package stft

import (
	"math/rand"
	"testing"

	"nsync/internal/scratch"
	"nsync/internal/sigproc"
)

func randomSignal(rng *rand.Rand, rate float64, channels, n int) *sigproc.Signal {
	s := sigproc.New(rate, channels, n)
	for c := 0; c < channels; c++ {
		for i := 0; i < n; i++ {
			s.Data[c][i] = rng.NormFloat64()
		}
	}
	return s
}

// TestStreamerMatchesTransform feeds a signal to a Streamer in a random
// chunk schedule (including empty chunks) and requires the incrementally
// built spectrogram to be byte-identical to the batch Transform. Poison is
// on, so a Streamer or Transform reading recycled buffer contents it did
// not overwrite would surface as NaNs.
func TestStreamerMatchesTransform(t *testing.T) {
	scratch.SetPoison(true)
	defer scratch.SetPoison(false)
	rng := rand.New(rand.NewSource(42))
	cfgs := []Config{
		{DeltaF: 10, DeltaT: 0.05},                            // win 100, hop 50 (non-pow2 FFT)
		{DeltaF: 7.8125, DeltaT: 0.064, Window: sigproc.Hann}, // win 128, hop 64 (radix-2)
		{DeltaF: 10, DeltaT: 0.03, Log: true},                 // overlapping hop, log magnitude
	}
	for ci, cfg := range cfgs {
		for _, channels := range []int{1, 3} {
			sig := randomSignal(rng, 1000, channels, 1237)
			want, err := Transform(sig, cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, err := NewStreamer(sig.Rate, channels, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := st.NewOutput()
			emitted := 0
			for pos := 0; pos < sig.Len(); {
				n := rng.Intn(200) // 0 is a legal idle chunk
				if pos+n > sig.Len() {
					n = sig.Len() - pos
				}
				var chunkView sigproc.Signal
				k, err := st.Push(sig.SliceInto(&chunkView, pos, pos+n), got)
				if err != nil {
					t.Fatal(err)
				}
				emitted += k
				pos += n
			}
			if emitted != want.Len() || st.Frames() != want.Len() {
				t.Fatalf("cfg %d ch %d: streamed %d frames (Frames()=%d), transform has %d", ci, channels, emitted, st.Frames(), want.Len())
			}
			if got.Channels() != want.Channels() {
				t.Fatalf("cfg %d ch %d: %d output channels, want %d", ci, channels, got.Channels(), want.Channels())
			}
			for c := range want.Data {
				for f := range want.Data[c] {
					if got.Data[c][f] != want.Data[c][f] {
						t.Fatalf("cfg %d ch %d: bin %d frame %d: streamed %v != batch %v", ci, channels, c, f, got.Data[c][f], want.Data[c][f])
					}
				}
			}
		}
	}
}

// TestStreamerReset verifies a reset Streamer reproduces a fresh one's
// output exactly, reusing its buffers.
func TestStreamerReset(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cfg := Config{DeltaF: 10, DeltaT: 0.05, Window: sigproc.Hann}
	sig := randomSignal(rng, 1000, 2, 777)
	st, err := NewStreamer(sig.Rate, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *sigproc.Signal {
		out := st.NewOutput()
		if _, err := st.Push(sig, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := run()
	st.Reset()
	if st.Frames() != 0 {
		t.Fatalf("Frames() = %d after Reset, want 0", st.Frames())
	}
	second := run()
	for c := range first.Data {
		for f := range first.Data[c] {
			if first.Data[c][f] != second.Data[c][f] {
				t.Fatalf("bin %d frame %d: %v before Reset, %v after", c, f, first.Data[c][f], second.Data[c][f])
			}
		}
	}
}

// TestStreamerValidation covers the mismatch errors.
func TestStreamerValidation(t *testing.T) {
	cfg := Config{DeltaF: 10, DeltaT: 0.05}
	if _, err := NewStreamer(1000, 0, cfg); err == nil {
		t.Error("NewStreamer accepted zero channels")
	}
	if _, err := NewStreamer(0, 1, cfg); err == nil {
		t.Error("NewStreamer accepted zero rate")
	}
	st, err := NewStreamer(1000, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst := st.NewOutput()
	if _, err := st.Push(sigproc.New(999, 2, 10), dst); err == nil {
		t.Error("Push accepted a rate mismatch")
	}
	if _, err := st.Push(sigproc.New(1000, 1, 10), dst); err == nil {
		t.Error("Push accepted a channel mismatch")
	}
	if _, err := st.Push(sigproc.New(1000, 2, 10), sigproc.New(st.Rate(), 1, 0)); err == nil {
		t.Error("Push accepted a mis-shaped destination")
	}
}

// TestTransformPooledEquivalence runs Transform pooled+poisoned and
// unpooled; outputs must be byte-identical.
func TestTransformPooledEquivalence(t *testing.T) {
	scratch.SetPoison(true)
	defer scratch.SetPoison(false)
	rng := rand.New(rand.NewSource(44))
	sig := randomSignal(rng, 1000, 2, 900)
	cfg := Config{DeltaF: 10, DeltaT: 0.05, Window: sigproc.Hann, Log: true}
	if _, err := Transform(sig, cfg); err != nil { // warm the pool
		t.Fatal(err)
	}
	pooled, err := Transform(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scratch.SetEnabled(false)
	fresh, err := Transform(sig, cfg)
	scratch.SetEnabled(true)
	if err != nil {
		t.Fatal(err)
	}
	for c := range fresh.Data {
		for f := range fresh.Data[c] {
			if pooled.Data[c][f] != fresh.Data[c][f] {
				t.Fatalf("bin %d frame %d: pooled %v != fresh %v", c, f, pooled.Data[c][f], fresh.Data[c][f])
			}
		}
	}
}
