package sigproc

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"
)

func TestSignalRoundTrip(t *testing.T) {
	s := New(4800, 3, 100)
	for c := range s.Data {
		for i := range s.Data[c] {
			s.Data[c][i] = float64(c*1000+i) / 7
		}
	}
	// Non-finite samples are rejected at ingestion (TestReadSignalRejectsNonFinite);
	// -0.0 must still round-trip bit-exactly.
	s.Data[2][6] = math.Copysign(0, -1)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSignal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rate != s.Rate || got.Channels() != 3 || got.Len() != 100 {
		t.Fatalf("shape mismatch: %v %d %d", got.Rate, got.Channels(), got.Len())
	}
	for c := range s.Data {
		for i := range s.Data[c] {
			a, b := s.Data[c][i], got.Data[c][i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("sample [%d][%d]: %v != %v", c, i, a, b)
			}
		}
	}
}

func TestSignalFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.nsig")
	s := New(100, 2, 37)
	s.Data[0][0] = 42
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0][0] != 42 || got.Len() != 37 {
		t.Error("file round trip lost data")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.nsig")); err == nil {
		t.Error("missing file: want error")
	}
}

func TestReadSignalErrors(t *testing.T) {
	if _, err := ReadSignal(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("truncated header: want error")
	}
	bad := append([]byte("NOTMAGIC"), make([]byte, 100)...)
	if _, err := ReadSignal(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic: got %v, want ErrBadFormat", err)
	}
	// Valid header but truncated body.
	var buf bytes.Buffer
	s := New(10, 1, 50)
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := ReadSignal(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body: want error")
	}
}

func TestWriteInvalidSignal(t *testing.T) {
	bad := &Signal{Rate: 1, Data: [][]float64{{1, 2}, {1}}}
	var buf bytes.Buffer
	if err := bad.Encode(&buf); err == nil {
		t.Error("ragged signal: want error")
	}
}
