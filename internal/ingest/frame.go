// Package ingest is the fault-tolerant streaming layer between the network
// and the core detection engine: a length-prefixed frame protocol carrying
// sequenced side-channel samples, a per-channel resequencer that repairs
// out-of-order delivery and fills gaps, and a TCP server with bounded
// per-session queues, admission control, load shedding, and graceful drain
// (see DESIGN.md §12).
//
// The wire format is deliberately dumb: big-endian, length-prefixed frames
// with a one-byte version and type, so a torn TCP stream fails as a short
// read (retryable by reconnecting) while a corrupted one fails decode with
// ErrMalformed (fatal for the connection, never for the server).
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the wire protocol version carried in every frame.
const Version = 1

// MaxFramePayload bounds a frame's payload so a corrupted or hostile length
// prefix cannot make the server allocate gigabytes.
const MaxFramePayload = 4 << 20

// ErrMalformed reports a structurally invalid frame: bad version, unknown
// type, truncated payload, or inconsistent lengths. It is a protocol error —
// the connection that produced it cannot be trusted to frame correctly
// anymore — as opposed to an I/O error, which only means the stream tore.
var ErrMalformed = errors.New("ingest: malformed frame")

// FrameType discriminates the frame payloads.
type FrameType uint8

// The frame types. Hello/HelloAck handshake a session (and carry the resume
// point on reconnect), Data carries sequenced samples, EOS declares a
// channel's final extent, Finish requests the final verdict, Verdict and
// Error are the server's terminal replies.
//
// The cluster types carry multi-process fleet traffic on the same listener:
// Redirect steers a session to its owning peer, Handoff/HandoffAck migrate a
// serialized session to its successor during drain, ModelFetch/ModelData
// replicate a content-addressed model blob alongside a handoff that pins it,
// and Ping/Pong are the peer health probe with per-tenant session counts
// piggybacked as quota gossip.
const (
	FrameHello FrameType = iota + 1
	FrameHelloAck
	FrameData
	FrameEOS
	FrameFinish
	FrameVerdict
	FrameError
	FrameRedirect
	FrameHandoff
	FrameHandoffAck
	FrameModelFetch
	FrameModelData
	FramePing
	FramePong
)

// HelloFlagExpectResume marks a reconnecting Hello that expects the server
// to hold retained session state. A cluster peer that does not (the original
// owner died before handing the session off) rejects it with a typed
// no-state error instead of silently opening a fresh session, so the client
// can log the state loss and downgrade deliberately.
const HelloFlagExpectResume = 1 << 0

// PingFlagDraining marks a Ping or Pong from a peer that has latched itself
// out of ownership (HandoffAll is running or has run). Receivers treat the
// sender as dead for ownership purposes — no redirects toward it, sessions
// it owned recompute to survivors — while its process is still reachable to
// finish pushing handoffs. Like Hello's flags it rides a trailing-optional
// byte, written only when nonzero, so pre-cluster peers interoperate.
const PingFlagDraining = 1 << 0

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameHelloAck:
		return "hello-ack"
	case FrameData:
		return "data"
	case FrameEOS:
		return "eos"
	case FrameFinish:
		return "finish"
	case FrameVerdict:
		return "verdict"
	case FrameError:
		return "error"
	case FrameRedirect:
		return "redirect"
	case FrameHandoff:
		return "handoff"
	case FrameHandoffAck:
		return "handoff-ack"
	case FrameModelFetch:
		return "model-fetch"
	case FrameModelData:
		return "model-data"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// TenantUsage is one tenant's live session count, piggybacked on Ping/Pong
// frames as the cluster's quota gossip.
type TenantUsage struct {
	Tenant   string
	Sessions int
}

// ChannelSpec declares one side channel in a Hello: its name (matched
// against the server's trained configuration), lane count (ACC carries 6
// lanes, MAG 3, ...), and sample rate — side channels sample at different
// rates (Table II), so the rate is per channel, not per session. Data frame
// values are sample-major lane-interleaved, so a frame's value count must
// be a multiple of the channel's lane count.
type ChannelSpec struct {
	Name  string
	Lanes int
	Rate  float64
}

// VerdictAlert is one fused alert inside a Verdict.
type VerdictAlert struct {
	// Time is seconds since the print began.
	Time float64
	// Votes, Healthy, Needed mirror core.FusedAlert.
	Votes, Healthy, Needed int
}

// VerdictChannel is one channel's final state inside a Verdict.
type VerdictChannel struct {
	Name        string
	Quarantined bool
	// Health is the health reason string ("ok", "flat", ...).
	Health string
	Voting bool
}

// Verdict is the server's terminal answer for a session.
type Verdict struct {
	// Intrusion reports whether any fused alert fired over the whole stream.
	Intrusion bool
	// Reason says how the session ended: "finished" (client asked), or
	// "drained" (server shut down and flushed what it had).
	Reason string
	// Alerts are the fused alerts in firing order.
	Alerts []VerdictAlert
	// Channels snapshots every channel's final health and vote.
	Channels []VerdictChannel
}

// Frame is the decoded union of every frame type; which fields are
// meaningful depends on Type. Keeping one struct (rather than an interface)
// makes the codec a single fuzzable surface.
type Frame struct {
	Type FrameType

	// Hello fields. Tenant names the fleet tenant the session belongs to
	// (admission quotas are enforced per tenant; empty means the anonymous
	// tenant). Model optionally selects a trained model by content address
	// from a shared pool (empty means the pool's default). Both are trailing
	// optional fields on the wire, so a version-1 Hello without them still
	// decodes.
	SessionID string
	Priority  int
	Channels  []ChannelSpec
	Tenant    string
	Model     string
	// Flags carries HelloFlag* bits, trailing optional on the wire so every
	// earlier Hello layout still decodes (and a zero-flag Hello encodes
	// byte-identically to a pre-cluster one).
	Flags uint8

	// Redirect: Addr is the owning peer's dial address; Peer its index in
	// the static membership (trailing optional, like Hello.Tenant, so future
	// redirect fields stay decodable by this version). Ping/Pong: Peer is
	// the sending peer's index.
	Addr string
	Peer int

	// Handoff: Blob is the captured monitor state (may be empty).
	// ModelData: Blob is one chunk of a gob-encoded model; Seq is the chunk
	// byte offset and Last marks the final chunk.
	Blob []byte
	Last bool

	// Ping/Pong: per-tenant live session counts (quota gossip).
	Usage []TenantUsage

	// HelloAck: per-channel committed sample counts (the resume point).
	Committed []uint64

	// Data and EOS fields. Seq is the index of the frame's first sample
	// within its channel's stream; Values is lane-interleaved sample data.
	// For EOS, Seq is the channel's total sample count.
	Channel int
	Seq     uint64
	Values  []float64

	// Verdict field.
	Verdict *Verdict

	// Error field.
	Message string
}

// ---- Encoding ----

type frameWriter struct{ buf []byte }

func (w *frameWriter) u8(v uint8)     { w.buf = append(w.buf, v) }
func (w *frameWriter) u16(v uint16)   { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *frameWriter) u32(v uint32)   { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *frameWriter) u64(v uint64)   { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *frameWriter) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *frameWriter) str8(s string)  { w.u8(uint8(len(s))); w.buf = append(w.buf, s...) }
func (w *frameWriter) str16(s string) { w.u16(uint16(len(s))); w.buf = append(w.buf, s...) }

// AppendFrame appends the encoded frame (length prefix included) to dst and
// returns the extended slice. It validates the frame's string and slice
// lengths against their wire-format field widths.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	w := &frameWriter{buf: make([]byte, 0, 64+8*len(f.Values))}
	w.u8(Version)
	w.u8(uint8(f.Type))
	switch f.Type {
	case FrameHello:
		if len(f.SessionID) > 255 || len(f.Channels) > 255 || len(f.Tenant) > 255 || len(f.Model) > 255 {
			return nil, fmt.Errorf("%w: hello field too long", ErrMalformed)
		}
		w.str8(f.SessionID)
		w.u8(uint8(f.Priority))
		w.u8(uint8(len(f.Channels)))
		for _, ch := range f.Channels {
			if len(ch.Name) > 255 || ch.Lanes < 1 || ch.Lanes > 255 {
				return nil, fmt.Errorf("%w: bad channel spec", ErrMalformed)
			}
			w.str8(ch.Name)
			w.u8(uint8(ch.Lanes))
			w.f64(ch.Rate)
		}
		w.str8(f.Tenant)
		w.str8(f.Model)
		if f.Flags != 0 {
			w.u8(f.Flags)
		}
	case FrameHelloAck:
		if len(f.Committed) > 255 {
			return nil, fmt.Errorf("%w: too many channels", ErrMalformed)
		}
		w.u8(uint8(len(f.Committed)))
		for _, c := range f.Committed {
			w.u64(c)
		}
	case FrameData:
		w.u8(uint8(f.Channel))
		w.u64(f.Seq)
		w.u32(uint32(len(f.Values)))
		for _, v := range f.Values {
			w.f64(v)
		}
	case FrameEOS:
		w.u8(uint8(f.Channel))
		w.u64(f.Seq)
	case FrameFinish:
		// no payload beyond the header
	case FrameVerdict:
		v := f.Verdict
		if v == nil {
			return nil, fmt.Errorf("%w: verdict frame without verdict", ErrMalformed)
		}
		if v.Intrusion {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.str16(v.Reason)
		w.u16(uint16(len(v.Alerts)))
		for _, a := range v.Alerts {
			w.f64(a.Time)
			w.u8(uint8(a.Votes))
			w.u8(uint8(a.Healthy))
			w.u8(uint8(a.Needed))
		}
		w.u8(uint8(len(v.Channels)))
		for _, ch := range v.Channels {
			w.str8(ch.Name)
			b := uint8(0)
			if ch.Quarantined {
				b |= 1
			}
			if ch.Voting {
				b |= 2
			}
			w.u8(b)
			w.str8(ch.Health)
		}
	case FrameError:
		w.str16(f.Message)
	case FrameRedirect:
		if len(f.Addr) > 65535 || f.Peer < 0 || f.Peer > 65535 {
			return nil, fmt.Errorf("%w: bad redirect", ErrMalformed)
		}
		w.str16(f.Addr)
		w.u16(uint16(f.Peer))
	case FrameHandoff:
		if len(f.SessionID) > 255 || len(f.Channels) > 255 || len(f.Tenant) > 255 ||
			len(f.Model) > 255 || len(f.Committed) > 255 {
			return nil, fmt.Errorf("%w: handoff field too long", ErrMalformed)
		}
		w.str8(f.SessionID)
		w.u8(uint8(f.Priority))
		w.u8(uint8(len(f.Channels)))
		for _, ch := range f.Channels {
			if len(ch.Name) > 255 || ch.Lanes < 1 || ch.Lanes > 255 {
				return nil, fmt.Errorf("%w: bad channel spec", ErrMalformed)
			}
			w.str8(ch.Name)
			w.u8(uint8(ch.Lanes))
			w.f64(ch.Rate)
		}
		w.str8(f.Tenant)
		w.str8(f.Model)
		w.u8(uint8(len(f.Committed)))
		for _, c := range f.Committed {
			w.u64(c)
		}
		w.u32(uint32(len(f.Blob)))
		w.buf = append(w.buf, f.Blob...)
	case FrameHandoffAck:
		if len(f.SessionID) > 255 || len(f.Message) > 65535 {
			return nil, fmt.Errorf("%w: handoff ack field too long", ErrMalformed)
		}
		w.str8(f.SessionID)
		w.str16(f.Message)
	case FrameModelFetch:
		if len(f.Model) > 255 {
			return nil, fmt.Errorf("%w: model version too long", ErrMalformed)
		}
		w.str8(f.Model)
	case FrameModelData:
		if len(f.Model) > 255 {
			return nil, fmt.Errorf("%w: model version too long", ErrMalformed)
		}
		w.str8(f.Model)
		w.u64(f.Seq)
		if f.Last {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.u32(uint32(len(f.Blob)))
		w.buf = append(w.buf, f.Blob...)
	case FramePing, FramePong:
		if f.Peer < 0 || f.Peer > 65535 || len(f.Usage) > 65535 {
			return nil, fmt.Errorf("%w: bad peer gossip", ErrMalformed)
		}
		w.u16(uint16(f.Peer))
		w.u16(uint16(len(f.Usage)))
		for _, u := range f.Usage {
			if len(u.Tenant) > 255 || u.Sessions < 0 || int64(u.Sessions) > math.MaxUint32 {
				return nil, fmt.Errorf("%w: bad tenant usage", ErrMalformed)
			}
			w.str8(u.Tenant)
			w.u32(uint32(u.Sessions))
		}
		// Trailing-optional draining flag: written only when set, so the
		// fresh-probe encoding matches peers that predate it.
		if f.Flags != 0 {
			w.u8(f.Flags)
		}
	default:
		return nil, fmt.Errorf("%w: unknown frame type %d", ErrMalformed, f.Type)
	}
	if len(w.buf) > MaxFramePayload {
		return nil, fmt.Errorf("%w: frame payload %d exceeds %d", ErrMalformed, len(w.buf), MaxFramePayload)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(w.buf)))
	return append(dst, w.buf...), nil
}

// WriteFrame encodes f and writes it to w as one length-prefixed frame.
func WriteFrame(w io.Writer, f *Frame) error {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ---- Decoding ----

type frameReader struct {
	buf []byte
	pos int
}

func (r *frameReader) take(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, fmt.Errorf("%w: payload truncated", ErrMalformed)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *frameReader) u8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *frameReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *frameReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *frameReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *frameReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *frameReader) str8() (string, error) {
	n, err := r.u8()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	return string(b), err
}

func (r *frameReader) str16() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	return string(b), err
}

// ReadFrame reads and decodes one length-prefixed frame. A clean io.EOF at
// the length prefix means the peer closed between frames; a short read
// anywhere else surfaces as io.ErrUnexpectedEOF (a torn stream, worth a
// reconnect); a structural problem surfaces wrapping ErrMalformed (the
// stream cannot be trusted).
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 2 {
		return nil, fmt.Errorf("%w: payload length %d too short", ErrMalformed, n)
	}
	if n > MaxFramePayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrMalformed, n, MaxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return DecodeFrame(payload)
}

// DecodeFrame decodes one frame payload (the bytes after the length
// prefix). Every structural failure wraps ErrMalformed.
func DecodeFrame(payload []byte) (*Frame, error) {
	r := &frameReader{buf: payload}
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrMalformed, ver, Version)
	}
	t, err := r.u8()
	if err != nil {
		return nil, err
	}
	f := &Frame{Type: FrameType(t)}
	switch f.Type {
	case FrameHello:
		if f.SessionID, err = r.str8(); err != nil {
			return nil, err
		}
		prio, err := r.u8()
		if err != nil {
			return nil, err
		}
		f.Priority = int(prio)
		nch, err := r.u8()
		if err != nil {
			return nil, err
		}
		if nch == 0 {
			return nil, fmt.Errorf("%w: hello with no channels", ErrMalformed)
		}
		for i := 0; i < int(nch); i++ {
			var ch ChannelSpec
			if ch.Name, err = r.str8(); err != nil {
				return nil, err
			}
			lanes, err := r.u8()
			if err != nil {
				return nil, err
			}
			if lanes == 0 {
				return nil, fmt.Errorf("%w: channel %q with zero lanes", ErrMalformed, ch.Name)
			}
			ch.Lanes = int(lanes)
			if ch.Rate, err = r.f64(); err != nil {
				return nil, err
			}
			if !(ch.Rate > 0) || math.IsInf(ch.Rate, 0) {
				return nil, fmt.Errorf("%w: channel %q rate %v", ErrMalformed, ch.Name, ch.Rate)
			}
			f.Channels = append(f.Channels, ch)
		}
		// Tenant and model are trailing optional fields: a pre-fleet Hello
		// ends at the channel list and decodes with both empty.
		if r.pos < len(r.buf) {
			if f.Tenant, err = r.str8(); err != nil {
				return nil, err
			}
		}
		if r.pos < len(r.buf) {
			if f.Model, err = r.str8(); err != nil {
				return nil, err
			}
		}
		if r.pos < len(r.buf) {
			if f.Flags, err = r.u8(); err != nil {
				return nil, err
			}
		}
	case FrameHelloAck:
		nch, err := r.u8()
		if err != nil {
			return nil, err
		}
		for i := 0; i < int(nch); i++ {
			c, err := r.u64()
			if err != nil {
				return nil, err
			}
			f.Committed = append(f.Committed, c)
		}
	case FrameData:
		ch, err := r.u8()
		if err != nil {
			return nil, err
		}
		f.Channel = int(ch)
		if f.Seq, err = r.u64(); err != nil {
			return nil, err
		}
		nv, err := r.u32()
		if err != nil {
			return nil, err
		}
		b, err := r.take(int(nv) * 8)
		if err != nil {
			return nil, err
		}
		f.Values = make([]float64, nv)
		for i := range f.Values {
			f.Values[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8:]))
		}
	case FrameEOS:
		ch, err := r.u8()
		if err != nil {
			return nil, err
		}
		f.Channel = int(ch)
		if f.Seq, err = r.u64(); err != nil {
			return nil, err
		}
	case FrameFinish:
		// no payload
	case FrameVerdict:
		v := &Verdict{}
		flags, err := r.u8()
		if err != nil {
			return nil, err
		}
		v.Intrusion = flags&1 != 0
		if v.Reason, err = r.str16(); err != nil {
			return nil, err
		}
		na, err := r.u16()
		if err != nil {
			return nil, err
		}
		for i := 0; i < int(na); i++ {
			var a VerdictAlert
			if a.Time, err = r.f64(); err != nil {
				return nil, err
			}
			votes, err := r.u8()
			if err != nil {
				return nil, err
			}
			healthy, err := r.u8()
			if err != nil {
				return nil, err
			}
			needed, err := r.u8()
			if err != nil {
				return nil, err
			}
			a.Votes, a.Healthy, a.Needed = int(votes), int(healthy), int(needed)
			v.Alerts = append(v.Alerts, a)
		}
		nch, err := r.u8()
		if err != nil {
			return nil, err
		}
		for i := 0; i < int(nch); i++ {
			var ch VerdictChannel
			if ch.Name, err = r.str8(); err != nil {
				return nil, err
			}
			b, err := r.u8()
			if err != nil {
				return nil, err
			}
			ch.Quarantined = b&1 != 0
			ch.Voting = b&2 != 0
			if ch.Health, err = r.str8(); err != nil {
				return nil, err
			}
			v.Channels = append(v.Channels, ch)
		}
		f.Verdict = v
	case FrameError:
		if f.Message, err = r.str16(); err != nil {
			return nil, err
		}
	case FrameRedirect:
		if f.Addr, err = r.str16(); err != nil {
			return nil, err
		}
		// The peer index is trailing optional: a client built against the
		// first redirect layout keeps decoding if later versions append more.
		if r.pos < len(r.buf) {
			p, err := r.u16()
			if err != nil {
				return nil, err
			}
			f.Peer = int(p)
		}
	case FrameHandoff:
		if f.SessionID, err = r.str8(); err != nil {
			return nil, err
		}
		prio, err := r.u8()
		if err != nil {
			return nil, err
		}
		f.Priority = int(prio)
		nch, err := r.u8()
		if err != nil {
			return nil, err
		}
		if nch == 0 {
			return nil, fmt.Errorf("%w: handoff with no channels", ErrMalformed)
		}
		for i := 0; i < int(nch); i++ {
			var ch ChannelSpec
			if ch.Name, err = r.str8(); err != nil {
				return nil, err
			}
			lanes, err := r.u8()
			if err != nil {
				return nil, err
			}
			if lanes == 0 {
				return nil, fmt.Errorf("%w: channel %q with zero lanes", ErrMalformed, ch.Name)
			}
			ch.Lanes = int(lanes)
			if ch.Rate, err = r.f64(); err != nil {
				return nil, err
			}
			if !(ch.Rate > 0) || math.IsInf(ch.Rate, 0) {
				return nil, fmt.Errorf("%w: channel %q rate %v", ErrMalformed, ch.Name, ch.Rate)
			}
			f.Channels = append(f.Channels, ch)
		}
		if f.Tenant, err = r.str8(); err != nil {
			return nil, err
		}
		if f.Model, err = r.str8(); err != nil {
			return nil, err
		}
		ncom, err := r.u8()
		if err != nil {
			return nil, err
		}
		for i := 0; i < int(ncom); i++ {
			c, err := r.u64()
			if err != nil {
				return nil, err
			}
			f.Committed = append(f.Committed, c)
		}
		nb, err := r.u32()
		if err != nil {
			return nil, err
		}
		b, err := r.take(int(nb))
		if err != nil {
			return nil, err
		}
		if len(b) > 0 {
			f.Blob = b
		}
	case FrameHandoffAck:
		if f.SessionID, err = r.str8(); err != nil {
			return nil, err
		}
		if f.Message, err = r.str16(); err != nil {
			return nil, err
		}
	case FrameModelFetch:
		if f.Model, err = r.str8(); err != nil {
			return nil, err
		}
	case FrameModelData:
		if f.Model, err = r.str8(); err != nil {
			return nil, err
		}
		if f.Seq, err = r.u64(); err != nil {
			return nil, err
		}
		last, err := r.u8()
		if err != nil {
			return nil, err
		}
		if last > 1 {
			return nil, fmt.Errorf("%w: model data last flag %d", ErrMalformed, last)
		}
		f.Last = last == 1
		nb, err := r.u32()
		if err != nil {
			return nil, err
		}
		b, err := r.take(int(nb))
		if err != nil {
			return nil, err
		}
		if len(b) > 0 {
			f.Blob = b
		}
	case FramePing, FramePong:
		p, err := r.u16()
		if err != nil {
			return nil, err
		}
		f.Peer = int(p)
		nu, err := r.u16()
		if err != nil {
			return nil, err
		}
		for i := 0; i < int(nu); i++ {
			var u TenantUsage
			if u.Tenant, err = r.str8(); err != nil {
				return nil, err
			}
			s, err := r.u32()
			if err != nil {
				return nil, err
			}
			u.Sessions = int(s)
			f.Usage = append(f.Usage, u)
		}
		if r.pos < len(r.buf) {
			if f.Flags, err = r.u8(); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("%w: unknown frame type %d", ErrMalformed, t)
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.buf)-r.pos)
	}
	return f, nil
}
