// Package tde implements Time Delay Estimation: finding the best location of
// a short signal y inside a longer signal x (Section V-B of the paper), via
// the sliding method of Eqs. (1)-(2), plus the biased variant TDEB used by
// Dynamic Window Matching (Section VI-B, Fig. 5).
package tde

import (
	"errors"
	"fmt"
	"math"

	"nsync/internal/obs"
	"nsync/internal/sigproc"
)

// ErrTooShort is returned when x is shorter than y, so y cannot appear in x.
var ErrTooShort = errors.New("tde: x is shorter than y")

// estimates counts similarity-array evaluations, the TDE work unit shared by
// Delay and DelayBiasedAt (see DESIGN.md §10).
var estimates = obs.GetCounter("tde.estimates")

// Estimator performs time delay estimation with a configurable similarity
// function. The zero value is not usable; construct with New.
type Estimator struct {
	sim     sigproc.SimilarityFunc
	stacked bool
	// fastCorr enables the FFT/prefix-sum fast path, valid only for the
	// default Pearson-correlation similarity with channel averaging.
	fastCorr bool
}

// Option configures an Estimator.
type Option func(*Estimator)

// WithSimilarity replaces the default Pearson-correlation similarity.
// Custom similarities use the naive sliding method rather than the FFT fast
// path.
func WithSimilarity(f sigproc.SimilarityFunc) Option {
	return func(e *Estimator) {
		e.sim = f
		e.fastCorr = false
	}
}

// WithoutFastPath forces the naive O(Nx*Ny) sliding method even for the
// default correlation similarity. Exists for equivalence tests and
// benchmarks.
func WithoutFastPath() Option {
	return func(e *Estimator) { e.fastCorr = false }
}

// WithStackedChannels makes the estimator flatten channels into one long
// vector instead of averaging per-channel scores. The paper found averaging
// (the default) reaches a higher SNR; stacking exists for the ablation.
func WithStackedChannels() Option {
	return func(e *Estimator) {
		e.stacked = true
		e.fastCorr = false
	}
}

// New returns an Estimator using the correlation coefficient, the NSYNC
// default similarity function.
func New(opts ...Option) *Estimator {
	e := &Estimator{sim: sigproc.Correlation, fastCorr: true}
	for _, o := range opts {
		o(e)
	}
	return e
}

// SimilarityArray computes s[n] = f(x[n:n+Ny], y) for n = 0..Nx-Ny
// (Eq. (1)). The returned slice has length Nx-Ny+1.
func (e *Estimator) SimilarityArray(x, y *sigproc.Signal) ([]float64, error) {
	nx, ny := x.Len(), y.Len()
	if nx < ny {
		return nil, fmt.Errorf("%w: len(x)=%d len(y)=%d", ErrTooShort, nx, ny)
	}
	if x.Channels() != y.Channels() {
		return nil, fmt.Errorf("tde: channel mismatch %d vs %d", x.Channels(), y.Channels())
	}
	estimates.Inc()
	if e.fastCorr {
		return fastCorrelationArray(x, y), nil
	}
	scores := make([]float64, nx-ny+1)
	for n := range scores {
		win := x.Slice(n, n+ny)
		var (
			s   float64
			err error
		)
		if e.stacked {
			s, err = sigproc.StackedSimilarity(e.sim, win, y)
		} else {
			s, err = sigproc.MultiChannelSimilarity(e.sim, win, y)
		}
		if err != nil {
			return nil, err
		}
		scores[n] = s
	}
	return scores, nil
}

// Delay returns n_delay = argmax_n s[n] (Eq. (2)): the sample offset in x at
// which y best matches, along with the winning similarity score.
func (e *Estimator) Delay(x, y *sigproc.Signal) (delay int, score float64, err error) {
	s, err := e.SimilarityArray(x, y)
	if err != nil {
		return 0, 0, err
	}
	d := argmax(s)
	return d, s[d], nil
}

// DelayBiased implements TDEB: the similarity array is multiplied by a
// Gaussian window with standard deviation sigma (in samples) centered on the
// middle of the array before taking the argmax. Because raw correlation
// scores may be negative and the bias is a multiplicative positive weight,
// scores are first shifted to be non-negative; this keeps the bias monotone
// (a bigger window weight can only help, never flip the sign of the
// preference).
func (e *Estimator) DelayBiased(x, y *sigproc.Signal, sigma float64) (delay int, score float64, err error) {
	s, err := e.SimilarityArray(x, y)
	if err != nil {
		return 0, 0, err
	}
	b := BiasedScores(s, sigma)
	d := argmax(b)
	return d, s[d], nil
}

// DelayBiasedAt is DelayBiased with the Gaussian bias centered on an
// arbitrary index of the similarity array instead of its middle. DWM needs
// this near the edges of the reference signal, where the extended search
// window is clipped and the predicted delay is no longer centered.
func (e *Estimator) DelayBiasedAt(x, y *sigproc.Signal, center int, sigma float64) (delay int, score float64, err error) {
	s, err := e.SimilarityArray(x, y)
	if err != nil {
		return 0, 0, err
	}
	b := BiasedScoresAt(s, center, sigma)
	d := argmax(b)
	return d, s[d], nil
}

// BiasedScores applies the TDEB Gaussian bias, centered on the middle of the
// array, to a similarity array and returns the biased scores. The input is
// not modified.
func BiasedScores(s []float64, sigma float64) []float64 {
	return BiasedScoresAt(s, (len(s)-1)/2, sigma)
}

// BiasedScoresAt applies the TDEB Gaussian bias centered at the given index.
// Scores are first shifted to be non-negative so the multiplicative weight
// acts as a monotone bias.
func BiasedScoresAt(s []float64, center int, sigma float64) []float64 {
	out := make([]float64, len(s))
	if len(s) == 0 {
		return out
	}
	lo := s[0]
	for _, v := range s {
		if v < lo {
			lo = v
		}
	}
	for i, v := range s {
		out[i] = (v - lo) * gaussianWeight(i, center, sigma)
	}
	return out
}

func gaussianWeight(i, center int, sigma float64) float64 {
	if sigma <= 0 {
		if i == center {
			return 1
		}
		return 0
	}
	d := float64(i-center) / sigma
	return math.Exp(-0.5 * d * d)
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
