// Package registry gives detector models an identity and a lifecycle. A
// Model is the complete trained state of a fused streaming detector — per
// channel: reference, DWM parameters, thresholds, health config — and its
// Version is a content address (truncated SHA-256 of the canonical gob
// encoding), so two models with the same bytes are the same version and a
// re-baselined candidate is always distinguishable from the active model.
// Models persist through internal/checkpoint's checksummed atomic store: a
// torn or corrupt file is a miss, never a half-loaded detector.
//
// The Deployment half (lifecycle.go) is the promotion state machine a new
// version must walk before it serves verdicts: shadow (side-by-side, no
// authority) → canary (authoritative, active model still compared) →
// active, with a disagreement budget that retires the candidate instead of
// promoting it when the two models diverge on live sessions.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"nsync/internal/checkpoint"
	"nsync/internal/core"
	"nsync/internal/dwm"
	"nsync/internal/sigproc"
)

// ChannelModel is one side channel's trained state.
type ChannelModel struct {
	Name       string
	Reference  *sigproc.Signal
	Params     dwm.Params
	Thresholds core.Thresholds
	Health     core.HealthConfig
}

// Model is a complete, self-contained fused detector configuration: enough
// to build a core.FusedMonitor with no other state.
type Model struct {
	// K is the fused vote quorum.
	K        int
	Channels []ChannelModel
}

// Validate reports structurally unusable models.
func (m *Model) Validate() error {
	if m == nil || len(m.Channels) == 0 {
		return errors.New("registry: model has no channels")
	}
	for i, ch := range m.Channels {
		if ch.Reference == nil || ch.Reference.Len() == 0 {
			return fmt.Errorf("registry: channel %d (%s): empty reference", i, ch.Name)
		}
	}
	return nil
}

// Version returns the model's content address: the first 12 hex digits of
// the SHA-256 of its canonical gob encoding. Any change to any channel's
// reference samples, thresholds, DWM parameters, or health config changes
// the version; building the same model twice yields the same version.
func (m *Model) Version() (string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return "", fmt.Errorf("registry: encode model: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:6]), nil
}

// Monitor builds a fresh streaming fused monitor from the model.
func (m *Model) Monitor() (*core.FusedMonitor, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	chans := make([]core.FusedMonitorChannel, len(m.Channels))
	for i, ch := range m.Channels {
		chans[i] = core.FusedMonitorChannel{
			Name:       ch.Name,
			Reference:  ch.Reference,
			Params:     ch.Params,
			Thresholds: ch.Thresholds,
			Health:     ch.Health,
		}
	}
	return core.NewFusedMonitor(chans, core.FusedConfig{K: m.K})
}

// storeKeyPrefix namespaces model entries inside the checkpoint store, so a
// model store can share a directory with experiment checkpoints.
const storeKeyPrefix = "model/"

// Store persists models on disk, content-addressed by version.
type Store struct {
	ckpt *checkpoint.Store
}

// OpenStore creates (if needed) and opens a model store directory.
func OpenStore(dir string) (*Store, error) {
	ckpt, err := checkpoint.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return &Store{ckpt: ckpt}, nil
}

// SetSync toggles durable writes on the underlying checkpoint store. The
// daemon enables it when session journaling is on: a journal entry pins a
// model by hash, so the model file it points at must survive anything the
// journal survives.
func (s *Store) SetSync(on bool) { s.ckpt.SetSync(on) }

// Put persists the model and returns its version. Saving the same model
// twice overwrites the identical entry — Put is idempotent.
func (s *Store) Put(m *Model) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	v, err := m.Version()
	if err != nil {
		return "", err
	}
	if err := s.ckpt.Save(storeKeyPrefix+v, m); err != nil {
		return "", err
	}
	return v, nil
}

// Get loads the model stored under version, reporting whether it was found.
// A damaged entry is a miss, mirroring the checkpoint store's policy.
func (s *Store) Get(version string) (*Model, bool, error) {
	var m Model
	ok, err := s.ckpt.Load(storeKeyPrefix+version, &m)
	if err != nil || !ok {
		return nil, false, err
	}
	return &m, true, nil
}

// Versions lists every stored model version, in unspecified order.
func (s *Store) Versions() ([]string, error) {
	keys, err := s.ckpt.Keys(storeKeyPrefix)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = strings.TrimPrefix(k, storeKeyPrefix)
	}
	return out, nil
}
