package dwm

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"nsync/internal/sigproc"
)

// walk builds a random-walk signal (broad autocorrelation, like smooth
// physical side channels).
func walk(rng *rand.Rand, rate float64, n int) *sigproc.Signal {
	s := sigproc.New(rate, 1, n)
	v := 0.0
	for i := 0; i < n; i++ {
		v += rng.NormFloat64()
		s.Data[0][i] = v
	}
	return s
}

// noise builds a white-noise signal (delta-like autocorrelation), on which
// TDE recovers offsets exactly and the TDEB bias cannot move the argmax.
func noise(rng *rand.Rand, rate float64, n int) *sigproc.Signal {
	s := sigproc.New(rate, 1, n)
	for i := 0; i < n; i++ {
		s.Data[0][i] = rng.NormFloat64()
	}
	return s
}

func testParams() Params {
	return Params{TWin: 0.5, THop: 0.25, TExt: 0.2, TSigma: 0.1, Eta: 0.1}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr bool
	}{
		{"valid", func(*Params) {}, false},
		{"zero TWin", func(p *Params) { p.TWin = 0 }, true},
		{"hop over win", func(p *Params) { p.THop = p.TWin * 2 }, true},
		{"zero hop", func(p *Params) { p.THop = 0 }, true},
		{"zero TExt", func(p *Params) { p.TExt = 0 }, true},
		{"negative sigma", func(p *Params) { p.TSigma = -1 }, true},
		{"eta above 1", func(p *Params) { p.Eta = 1.5 }, true},
		{"eta zero ok", func(p *Params) { p.Eta = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testParams()
			tt.mutate(&p)
			if err := p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestDefaultParamsRatios(t *testing.T) {
	p := DefaultParams(4.0, 2.0)
	if p.THop != 2.0 {
		t.Errorf("THop = %v, want TWin/2", p.THop)
	}
	if p.TSigma != 1.0 {
		t.Errorf("TSigma = %v, want TExt/2", p.TSigma)
	}
	if p.Eta != 0.1 {
		t.Errorf("Eta = %v, want 0.1", p.Eta)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestSamplesConversion(t *testing.T) {
	sp := testParams().Samples(100)
	if sp.NWin != 50 || sp.NHop != 25 || sp.NExt != 20 {
		t.Errorf("samples = %+v", sp)
	}
	if !almost(sp.NSigma, 10, 1e-12) {
		t.Errorf("NSigma = %v, want 10", sp.NSigma)
	}
	// Tiny durations clamp to 1 sample.
	tiny := Params{TWin: 1e-9, THop: 1e-9, TExt: 1e-9, TSigma: 0, Eta: 0.1}.Samples(100)
	if tiny.NWin != 1 || tiny.NHop != 1 || tiny.NExt != 1 {
		t.Errorf("tiny params not clamped: %+v", tiny)
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSelfSynchronizationIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	b := walk(rng, 100, 2000)
	res, err := Run(b, b, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HDisp) == 0 {
		t.Fatal("no windows synchronized")
	}
	for i, h := range res.HDisp {
		if h != 0 {
			t.Errorf("self h_disp[%d] = %d, want 0", i, h)
		}
	}
	for i, s := range res.Scores {
		if !almost(s, 1, 1e-9) {
			t.Errorf("self score[%d] = %v, want 1", i, s)
		}
	}
}

func TestConstantShiftRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	full := noise(rng, 100, 2100)
	b := full
	for _, shift := range []int{3, 9, 15} {
		a := full.Slice(shift, 2100) // a[i] = b[i+shift]
		res, err := Run(a, b, testParams())
		if err != nil {
			t.Fatal(err)
		}
		// Skip the first few windows while h_low converges.
		for i := 3; i < len(res.HDisp); i++ {
			if res.HDisp[i] != shift {
				t.Errorf("shift %d: h_disp[%d] = %d", shift, i, res.HDisp[i])
			}
		}
	}
}

// growingDelaySignal plays b progressively "slower": every segment of segLen
// samples repeats its last rep samples, so the cumulative displacement grows
// by -rep per segment.
func growingDelaySignal(b *sigproc.Signal, segLen, rep int) *sigproc.Signal {
	out := &sigproc.Signal{Rate: b.Rate}
	pos := 0
	for pos+segLen <= b.Len() {
		_ = out.Concat(b.Slice(pos, pos+segLen))
		pos += segLen - rep
	}
	return out
}

func TestTracksGrowingTimeNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	b := noise(rng, 100, 4000)
	a := growingDelaySignal(b, 500, 2) // drifts -2 samples every ~5 s
	res, err := Run(a, b, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HDisp) < 10 {
		t.Fatalf("too few windows: %d", len(res.HDisp))
	}
	last := res.HDisp[len(res.HDisp)-1]
	if last >= 0 {
		t.Errorf("final h_disp = %d, want negative (growing delay)", last)
	}
	// The drift should be roughly -2 per 498 reference samples consumed.
	aLen := a.Len()
	expected := -2 * (aLen / 498)
	if math.Abs(float64(last-expected)) > 6 {
		t.Errorf("final h_disp = %d, want about %d", last, expected)
	}
	// h_disp should be mostly non-increasing over time (allowing small
	// estimation wobble).
	bad := 0
	for i := 1; i < len(res.HDisp); i++ {
		if res.HDisp[i] > res.HDisp[i-1]+2 {
			bad++
		}
	}
	if bad > len(res.HDisp)/10 {
		t.Errorf("%d/%d windows moved against the drift", bad, len(res.HDisp))
	}
}

func TestHLowInertiaBound(t *testing.T) {
	// |h_low[i] - h_low[i-1]| <= round(eta * n_ext) always (Eq. 12).
	rng := rand.New(rand.NewSource(33))
	b := noise(rng, 100, 3000)
	a := growingDelaySignal(b, 300, 3)
	p := testParams()
	res, err := Run(a, b, p)
	if err != nil {
		t.Fatal(err)
	}
	sp := p.Samples(100)
	bound := int(math.Round(sp.Eta*float64(sp.NExt))) + 1
	prev := 0
	for i, h := range res.HLow {
		if d := h - prev; d > bound || d < -bound {
			t.Errorf("h_low jump at %d: %d -> %d exceeds bound %d", i, prev, h, bound)
		}
		prev = h
	}
}

func TestStepValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	b := walk(rng, 100, 500)
	s, err := NewSynchronizer(b, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Step(walk(rng, 100, 10)); err == nil {
		t.Error("wrong window size: want error")
	}
	if _, _, err := s.Step(sigproc.New(100, 2, 50)); err == nil {
		t.Error("wrong channel count: want error")
	}
}

func TestNewSynchronizerErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	if _, err := NewSynchronizer(walk(rng, 100, 10), testParams()); err == nil {
		t.Error("reference shorter than window: want error")
	}
	if _, err := NewSynchronizer(&sigproc.Signal{Rate: 100}, testParams()); err == nil {
		t.Error("empty reference: want error")
	}
	bad := testParams()
	bad.TWin = -1
	if _, err := NewSynchronizer(walk(rng, 100, 500), bad); err == nil {
		t.Error("invalid params: want error")
	}
}

func TestRunChannelMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	b := walk(rng, 100, 500)
	a := sigproc.New(100, 2, 500)
	if _, err := Run(a, b, testParams()); err == nil {
		t.Error("channel mismatch: want error")
	}
}

func TestNumWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	b := walk(rng, 100, 1000)
	s, err := NewSynchronizer(b, testParams()) // NWin 50, NHop 25
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ n, want int }{
		{0, 0}, {49, 0}, {50, 1}, {74, 1}, {75, 2}, {1000, 39},
	}
	for _, tt := range tests {
		if got := s.NumWindows(tt.n); got != tt.want {
			t.Errorf("NumWindows(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

// TestRunEqualsRepeatedStep is the regression test for the hoisted loop
// bound in Run: feeding every window through Step by hand must produce a
// Result identical in every field to one Run call, including the window
// count implied by NumWindows evaluated once up front.
func TestRunEqualsRepeatedStep(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	b := walk(rng, 100, 2500)
	a := growingDelaySignal(b, 300, 2)
	p := testParams()
	batch, err := Run(a, b, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSynchronizer(b, p)
	if err != nil {
		t.Fatal(err)
	}
	sp := s.SampleParams()
	want := s.NumWindows(a.Len())
	for i := 0; i < want; i++ {
		lo := i * sp.NHop
		if _, _, err := s.Step(a.Slice(lo, lo+sp.NWin)); err != nil {
			t.Fatal(err)
		}
	}
	if s.WindowIndex() != want {
		t.Fatalf("stepped %d windows, NumWindows says %d", s.WindowIndex(), want)
	}
	if got := len(batch.HDisp); got != want {
		t.Fatalf("Run produced %d windows, NumWindows says %d", got, want)
	}
	if !reflect.DeepEqual(s.Result(), batch) {
		t.Errorf("Run result differs from repeated Step:\nrun:  %+v\nstep: %+v", batch, s.Result())
	}
}

func TestStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	b := noise(rng, 100, 2000)
	a := growingDelaySignal(b, 400, 1)
	p := testParams()
	batch, err := Run(a, b, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSynchronizer(b, p)
	if err != nil {
		t.Fatal(err)
	}
	sp := s.SampleParams()
	for i := 0; i < s.NumWindows(a.Len()); i++ {
		lo := i * sp.NHop
		if _, _, err := s.Step(a.Slice(lo, lo+sp.NWin)); err != nil {
			t.Fatal(err)
		}
	}
	stream := s.Result()
	if len(stream.HDisp) != len(batch.HDisp) {
		t.Fatalf("window counts differ: %d vs %d", len(stream.HDisp), len(batch.HDisp))
	}
	for i := range stream.HDisp {
		if stream.HDisp[i] != batch.HDisp[i] {
			t.Errorf("window %d: stream %d vs batch %d", i, stream.HDisp[i], batch.HDisp[i])
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{HDisp: []int{-3, 4}, NHop: 25, NWin: 50, Rate: 100}
	hd := r.HDist()
	if hd[0] != 3 || hd[1] != 4 {
		t.Errorf("HDist = %v", hd)
	}
	hs := r.HDispSeconds()
	if !almost(hs[0], -0.03, 1e-12) {
		t.Errorf("HDispSeconds[0] = %v", hs[0])
	}
	if got := r.WindowTime(4); !almost(got, 1.0, 1e-12) {
		t.Errorf("WindowTime(4) = %v, want 1.0", got)
	}
}

func TestWithoutBiasStillTracksStrongSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	b := walk(rng, 100, 1500)
	res, err := Run(b, b, testParams(), WithoutBias())
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range res.HDisp {
		if h != 0 {
			t.Errorf("unbiased self h_disp[%d] = %d, want 0", i, h)
		}
	}
}

func TestBiasStabilizesPeriodicSignal(t *testing.T) {
	// On a periodic signal, unbiased DWM may lock onto any ambiguous peak;
	// biased DWM must keep h_disp near zero.
	n := 3000
	b := sigproc.New(100, 1, n)
	for i := 0; i < n; i++ {
		b.Data[0][i] = math.Sin(2*math.Pi*float64(i)/40) + 0.05*math.Sin(2*math.Pi*float64(i)/7)
	}
	res, err := Run(b, b, testParams())
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range res.HDisp {
		if h != 0 {
			t.Errorf("biased periodic self h_disp[%d] = %d, want 0", i, h)
		}
	}
}

// Property: DWM h_disp range never exceeds ext + accumulated h_low.
func TestHDispWithinSearchRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := noise(rng, 100, 1200)
		a := growingDelaySignal(b, 350, 2)
		p := testParams()
		res, err := Run(a, b, p)
		if err != nil {
			return false
		}
		sp := p.Samples(100)
		prevLow := 0
		for i, h := range res.HDisp {
			if h > prevLow+sp.NExt || h < prevLow-sp.NExt {
				return false
			}
			prevLow = res.HLow[i]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestRunValidatesObserved: a ragged observed signal must fail up front
// with a clear error, not per-window deep inside Step.
func TestRunValidatesObserved(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	b := walk(rng, 100, 500)
	ragged := &sigproc.Signal{
		Rate: 100,
		Data: [][]float64{make([]float64, 500), make([]float64, 300)},
	}
	_, err := Run(ragged, b, Params{TWin: 0.5, THop: 0.25, TExt: 0.2, TSigma: 0.1, Eta: 0.1})
	if err == nil {
		t.Fatal("ragged observed signal: want error from Run")
	}
	if !strings.Contains(err.Error(), "observed") {
		t.Errorf("error should name the observed signal, got: %v", err)
	}
}

// TestProposeDoesNotMutate: Propose must leave the synchronizer unchanged,
// and Propose+Commit must equal Step exactly.
func TestProposeDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	b := walk(rng, 100, 1000)
	a := growingDelaySignal(b, 100, 4)
	stepped, err := NewSynchronizer(b, testParams())
	if err != nil {
		t.Fatal(err)
	}
	proposed, err := NewSynchronizer(b, testParams())
	if err != nil {
		t.Fatal(err)
	}
	n := proposed.NumWindows(a.Len())
	if n < 3 {
		t.Fatalf("want at least 3 windows, got %d", n)
	}
	for i := 0; i < n; i++ {
		win := a.Slice(i*proposed.sp.NHop, i*proposed.sp.NHop+proposed.sp.NWin)
		// Propose twice: the first call must not disturb the second.
		p1, err := proposed.Propose(win)
		if err != nil {
			t.Fatal(err)
		}
		if got := proposed.WindowIndex(); got != i {
			t.Fatalf("Propose advanced WindowIndex to %d at window %d", got, i)
		}
		p2, err := proposed.Propose(win)
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatalf("window %d: repeated Propose diverged: %+v vs %+v", i, p1, p2)
		}
		proposed.Commit(p2)
		h, score, err := stepped.Step(win)
		if err != nil {
			t.Fatal(err)
		}
		if h != p2.HDisp || score != p2.Score {
			t.Fatalf("window %d: Step (%d, %v) != Propose+Commit (%d, %v)", i, h, score, p2.HDisp, p2.Score)
		}
	}
	got, want := proposed.Result(), stepped.Result()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Propose+Commit result diverged from Step:\n%+v\n%+v", got, want)
	}
}
