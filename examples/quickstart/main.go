// Quickstart: the minimal NSYNC workflow — record a reference print, train
// on a few benign repetitions, then classify new prints.
//
//	go run ./examples/quickstart
//
// Everything runs against the built-in printer simulator, so no hardware is
// needed: the example slices the paper's gear model, "prints" it several
// times on the simulated Ultimaker 3, captures the accelerometer side
// channel, and feeds the recordings through the public API.
package main

import (
	"fmt"
	"log"

	"nsync"
	"nsync/internal/experiment"
	"nsync/internal/gcode"
	"nsync/internal/printer"
	"nsync/internal/sensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// record simulates one print of prog and returns its accelerometer signal.
func record(scale experiment.Scale, prog *gcode.Program, seed int64) (*nsync.Signal, error) {
	tr, err := printer.Run(prog, printer.UM3(), printer.Options{
		Seed: seed, TraceRate: scale.TraceRate,
		InitialHotend: 205, InitialBed: 60,
	})
	if err != nil {
		return nil, err
	}
	if ready := tr.EventTime("hotend-ready"); ready > 0 {
		tr = tr.TrimBefore(ready)
	}
	return sensor.Acquire(tr, sensor.ACC, scale.Sensor, seed)
}

func run() error {
	scale := experiment.CI()
	benign, attacks, err := scale.Programs()
	if err != nil {
		return err
	}

	fmt.Println("recording reference print...")
	ref, err := record(scale, benign, 1)
	if err != nil {
		return err
	}

	// NSYNC with the paper's UM3 DWM parameters (Table IV) and a generous
	// OCC margin for the small training set.
	det, err := nsync.NewDWMDetector(ref, scale.DWM["UM3"], 1.0)
	if err != nil {
		return err
	}

	fmt.Println("recording 4 benign training prints...")
	var train []*nsync.Signal
	for seed := int64(2); seed <= 5; seed++ {
		s, err := record(scale, benign, seed)
		if err != nil {
			return err
		}
		train = append(train, s)
	}
	if err := det.Train(train); err != nil {
		return err
	}
	th, err := det.Thresholds()
	if err != nil {
		return err
	}
	fmt.Printf("learned thresholds: c_c=%.0f h_c=%.0f v_c=%.3f\n\n", th.CC, th.HC, th.VC)

	// A fresh benign print must pass.
	obs, err := record(scale, benign, 100)
	if err != nil {
		return err
	}
	v, err := det.Classify(obs)
	if err != nil {
		return err
	}
	fmt.Printf("benign print:     intrusion=%v\n", v.Intrusion)

	// Every Table I attack must be caught.
	for _, name := range experiment.AttackNames {
		obs, err := record(scale, attacks[name], 200)
		if err != nil {
			return err
		}
		v, err := det.Classify(obs)
		if err != nil {
			return err
		}
		status := "MISSED"
		if v.Intrusion {
			status = fmt.Sprintf("detected at t=%.0fs via %v", v.FirstTime, v.Triggered)
		}
		fmt.Printf("%-12s print: %s\n", name, status)
	}
	return nil
}
