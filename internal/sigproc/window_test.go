package sigproc

import (
	"math"
	"testing"
)

func TestBoxcar(t *testing.T) {
	w := Boxcar(5)
	for i, v := range w {
		if v != 1 {
			t.Errorf("Boxcar[%d] = %v, want 1", i, v)
		}
	}
}

func TestHannEndpointsAndPeak(t *testing.T) {
	w := Hann(9)
	if !almostEqual(w[0], 0, 1e-12) || !almostEqual(w[8], 0, 1e-12) {
		t.Errorf("Hann endpoints = %v, %v, want 0", w[0], w[8])
	}
	if !almostEqual(w[4], 1, 1e-12) {
		t.Errorf("Hann center = %v, want 1", w[4])
	}
	if got := Hann(1); got[0] != 1 {
		t.Errorf("Hann(1) = %v, want [1]", got)
	}
}

func TestBlackmanHarrisProperties(t *testing.T) {
	w := BlackmanHarris(101)
	// Symmetric, peaks at center, tiny at edges.
	for i := 0; i < 50; i++ {
		if !almostEqual(w[i], w[100-i], 1e-9) {
			t.Fatalf("BH not symmetric at %d: %v vs %v", i, w[i], w[100-i])
		}
	}
	if w[50] < 0.99 {
		t.Errorf("BH center = %v, want ~1", w[50])
	}
	if w[0] > 1e-4 {
		t.Errorf("BH edge = %v, want ~6e-5", w[0])
	}
	if got := BlackmanHarris(1); got[0] != 1 {
		t.Errorf("BlackmanHarris(1) = %v, want [1]", got)
	}
}

func TestGaussianWindow(t *testing.T) {
	w := Gaussian(11, 2)
	if !almostEqual(w[5], 1, 1e-12) {
		t.Errorf("Gaussian center = %v, want 1", w[5])
	}
	for i := 0; i < 5; i++ {
		if !almostEqual(w[i], w[10-i], 1e-12) {
			t.Errorf("Gaussian asymmetric at %d", i)
		}
		if w[i] >= w[i+1] {
			t.Errorf("Gaussian not increasing toward center at %d", i)
		}
	}
	// One-sigma point: exp(-0.5).
	if !almostEqual(w[3], math.Exp(-0.5), 1e-12) {
		t.Errorf("Gaussian 1-sigma = %v, want %v", w[3], math.Exp(-0.5))
	}
}

func TestGaussianDegenerateSigma(t *testing.T) {
	w := Gaussian(7, 0)
	for i, v := range w {
		want := 0.0
		if i == 3 {
			want = 1
		}
		if v != want {
			t.Errorf("Gaussian(7,0)[%d] = %v, want %v", i, v, want)
		}
	}
	if got := Gaussian(0, 1); len(got) != 0 {
		t.Errorf("Gaussian(0) length = %d, want 0", len(got))
	}
}

func TestWindowByName(t *testing.T) {
	tests := []struct {
		name  string
		check func([]float64) bool
	}{
		{"boxcar", func(w []float64) bool { return w[0] == 1 }},
		{"hann", func(w []float64) bool { return almostEqual(w[0], 0, 1e-12) }},
		{"blackman-harris", func(w []float64) bool { return w[0] < 1e-4 }},
		{"bh", func(w []float64) bool { return w[0] < 1e-4 }},
		{"unknown", func(w []float64) bool { return w[0] == 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := WindowByName(tt.name)(16)
			if !tt.check(w) {
				t.Errorf("window %q first sample = %v", tt.name, w[0])
			}
		})
	}
}
