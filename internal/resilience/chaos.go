package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"nsync/internal/obs"
)

// Injection counters (see DESIGN.md §11): how much havoc a chaos run
// actually wreaked, next to the engine.retries / engine.panics_recovered
// counters that show the pipeline absorbing it.
var (
	chaosPanics = obs.GetCounter("chaos.injected_panics")
	chaosErrors = obs.GetCounter("chaos.injected_errors")
	chaosDelays = obs.GetCounter("chaos.injected_delays")
)

// ChaosConfig parameterizes a Chaos injector. All rates are probabilities
// per Strike call in [0, 1].
type ChaosConfig struct {
	// Seed drives the per-call randomness; the n-th Strike of a given seed
	// always makes the same decision.
	Seed int64
	// PanicRate is the probability that a strike panics.
	PanicRate float64
	// ErrorRate is the probability that a strike returns a transient error.
	ErrorRate float64
	// LatencyRate is the probability that a strike sleeps Latency first.
	LatencyRate float64
	// Latency is the injected delay (default 10 ms).
	Latency time.Duration
}

// Validate reports malformed configs.
func (c ChaosConfig) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"panic", c.PanicRate}, {"error", c.ErrorRate}, {"latency", c.LatencyRate}} {
		if r.v < 0 || r.v > 1 || r.v != r.v {
			return fmt.Errorf("resilience: chaos %s rate %v outside [0, 1]", r.name, r.v)
		}
	}
	if c.Latency < 0 {
		return fmt.Errorf("resilience: negative chaos latency %v", c.Latency)
	}
	return nil
}

// Chaos injects pipeline failures — panics, transient errors, latency — at
// configured rates. It is the pipeline analogue of internal/fault: fault
// corrupts the signals a detector sees, Chaos breaks the machinery that
// evaluates them, and the retry/checkpoint layer must absorb both. Safe for
// concurrent use; a nil *Chaos never injects.
type Chaos struct {
	cfg   ChaosConfig
	calls atomic.Int64
}

// NewChaos builds an injector.
func NewChaos(cfg ChaosConfig) (*Chaos, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Latency == 0 {
		cfg.Latency = 10 * time.Millisecond
	}
	return &Chaos{cfg: cfg}, nil
}

// Wrap decorates a pipeline stage with a strike before the real work, so
// any func(ctx) error can be chaos-tested without changing its body.
func (c *Chaos) Wrap(op func(ctx context.Context) error) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		if err := c.Strike(ctx); err != nil {
			return err
		}
		return op(ctx)
	}
}

// Strike makes one injection decision: it may sleep (latency), panic, or
// return a transient error, in that order of evaluation with independent
// draws. The decision depends only on the seed and the strike ordinal, so a
// fixed worker schedule replays identically. A nil receiver is a no-op,
// letting call sites strike unconditionally.
func (c *Chaos) Strike(ctx context.Context) error {
	if c == nil {
		return nil
	}
	n := c.calls.Add(1)
	// Splitmix-style mix of seed and ordinal so consecutive ordinals do not
	// produce correlated rand streams.
	const golden = int64(-0x61C8864680B583EB) // 0x9E3779B97F4A7C15 as int64
	r := rand.New(rand.NewSource(c.cfg.Seed ^ (n * golden)))
	if c.cfg.LatencyRate > 0 && r.Float64() < c.cfg.LatencyRate {
		chaosDelays.Inc()
		if err := sleepCtx(ctx, c.cfg.Latency); err != nil {
			return err
		}
	}
	if c.cfg.PanicRate > 0 && r.Float64() < c.cfg.PanicRate {
		chaosPanics.Inc()
		panic(fmt.Sprintf("resilience: chaos-injected panic (strike %d)", n))
	}
	if c.cfg.ErrorRate > 0 && r.Float64() < c.cfg.ErrorRate {
		chaosErrors.Inc()
		return Transient(fmt.Errorf("resilience: chaos-injected transient error (strike %d)", n))
	}
	return nil
}

// Strikes returns how many injection decisions have been made.
func (c *Chaos) Strikes() int64 {
	if c == nil {
		return 0
	}
	return c.calls.Load()
}

// ParseChaos parses the -chaos flag syntax: comma-separated key=value
// pairs with keys panic, error, latency (rates in [0, 1]), delay (a
// time.Duration), and seed (int64, defaulting to defaultSeed).
// Example: "panic=0.05,error=0.1,latency=0.02,delay=5ms,seed=7".
func ParseChaos(spec string, defaultSeed int64) (ChaosConfig, error) {
	cfg := ChaosConfig{Seed: defaultSeed}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return ChaosConfig{}, fmt.Errorf("resilience: chaos spec %q: want key=value", part)
		}
		switch key {
		case "panic", "error", "latency":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return ChaosConfig{}, fmt.Errorf("resilience: chaos %s rate %q: %v", key, val, err)
			}
			switch key {
			case "panic":
				cfg.PanicRate = rate
			case "error":
				cfg.ErrorRate = rate
			case "latency":
				cfg.LatencyRate = rate
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return ChaosConfig{}, fmt.Errorf("resilience: chaos delay %q: %v", val, err)
			}
			cfg.Latency = d
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return ChaosConfig{}, fmt.Errorf("resilience: chaos seed %q: %v", val, err)
			}
			cfg.Seed = s
		default:
			return ChaosConfig{}, fmt.Errorf("resilience: unknown chaos key %q (want panic, error, latency, delay, seed)", key)
		}
	}
	return cfg, cfg.Validate()
}
