package printer

import (
	"nsync/internal/gcode"
)

// This file provides a library of ready-made firmware attacks — the second
// attacker of the paper's threat model (Section IV): the printer's firmware
// is compromised, so it misbehaves even when fed benign G-code. Each
// constructor returns a FirmwareHook for Options.Firmware. Because the
// hooks run inside the printer, none of them leave any trace in the G-code
// stream an upstream integrity check could see.

// SpeedFirmware makes the firmware execute every move at factor times the
// commanded feed rate once the tool has risen above activateZ — a stealthy
// under/over-speed sabotage that weakens layer bonding.
func SpeedFirmware(factor, activateZ float64) FirmwareHook {
	armed := false
	return func(cmd gcode.Command) *gcode.Command {
		if z, ok := cmd.Get('Z'); ok && z > activateZ {
			armed = true
		}
		if armed && cmd.IsMove() {
			if f, ok := cmd.Get('F'); ok {
				cmd.Set('F', f*factor)
			}
		}
		return &cmd
	}
}

// ZOffsetFirmware shifts every Z target by offset millimeters, crushing or
// detaching layers while the G-code remains pristine.
func ZOffsetFirmware(offset float64) FirmwareHook {
	return func(cmd gcode.Command) *gcode.Command {
		if cmd.IsMove() {
			if z, ok := cmd.Get('Z'); ok {
				cmd.Set('Z', z+offset)
			}
		}
		return &cmd
	}
}

// TempFirmware biases every hotend temperature command by delta Celsius —
// under-extrusion through cold printing, or degradation through overheat.
func TempFirmware(delta float64) FirmwareHook {
	return func(cmd gcode.Command) *gcode.Command {
		switch cmd.Code {
		case "M104", "M109":
			if tgt, ok := cmd.Get('S'); ok && tgt > 0 {
				cmd.Set('S', tgt+delta)
			}
		}
		return &cmd
	}
}

// UnderExtrudeFirmware drops the extrusion from every nth extruding move
// (n >= 2), starving the part of material at a rate that survives a quick
// visual check.
func UnderExtrudeFirmware(n int) FirmwareHook {
	if n < 2 {
		n = 2
	}
	count := 0
	lastE := 0.0
	deficit := 0.0
	return func(cmd gcode.Command) *gcode.Command {
		if cmd.Code == "G92" {
			if e, ok := cmd.Get('E'); ok {
				lastE = e
				deficit = 0
			}
			return &cmd
		}
		if !cmd.IsMove() {
			return &cmd
		}
		e, ok := cmd.Get('E')
		if !ok {
			return &cmd
		}
		if e > lastE {
			count++
			if count%n == 0 {
				deficit += e - lastE
				lastE = e
				cmd.Delete('E')
				return &cmd
			}
		}
		lastE = e
		cmd.Set('E', e-deficit)
		return &cmd
	}
}

// DwellInjectorFirmware pauses the printer for dwellSeconds after every
// interval moves — cold joints between otherwise perfect extrusions.
// Because FirmwareHook is one-to-one, the pause is expressed by rewriting
// the move to end with a zero-feed crawl; use gcode.FeedHoldAttack for the
// stream-level equivalent that inserts true G4 dwells.
func DwellInjectorFirmware(interval int, slowFactor float64) FirmwareHook {
	if interval < 1 {
		interval = 1
	}
	if slowFactor <= 0 || slowFactor >= 1 {
		slowFactor = 0.2
	}
	count := 0
	lastF := 1800.0 // a sane default if no move has named a feed yet
	return func(cmd gcode.Command) *gcode.Command {
		if cmd.IsMove() {
			if f, ok := cmd.Get('F'); ok {
				lastF = f
			}
			if cmd.Has('E') {
				count++
				if count%interval == 0 {
					cmd.Set('F', lastF*slowFactor)
				} else if !cmd.Has('F') {
					// Restore the modal feed so the slowdown does not
					// leak into following moves.
					cmd.Set('F', lastF)
				}
			}
		}
		return &cmd
	}
}
