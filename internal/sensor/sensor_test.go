package sensor

import (
	"math"
	"testing"

	"nsync/internal/gcode"
	"nsync/internal/printer"
	"nsync/internal/sigproc"
	"nsync/internal/slicer"
)

// testTrace simulates a short gear print once per test binary.
var testTraceCache *printer.Trace

func testTrace(t *testing.T) *printer.Trace {
	t.Helper()
	if testTraceCache != nil {
		return testTraceCache
	}
	cfg := slicer.DefaultConfig()
	cfg.TotalHeight = 0.2
	prog, err := slicer.Slice(slicer.Gear(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := printer.Run(prog, printer.UM3(), printer.Options{
		Seed: 77, TraceRate: 1000, InitialHotend: 200, InitialBed: 58,
	})
	if err != nil {
		t.Fatal(err)
	}
	testTraceCache = tr
	return tr
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Rates = PaperRates().Scaled(20) // keep tests fast
	return cfg
}

func TestChannelString(t *testing.T) {
	names := map[Channel]string{ACC: "ACC", TMP: "TMP", MAG: "MAG", AUD: "AUD", EPT: "EPT", PWR: "PWR"}
	for ch, want := range names {
		if got := ch.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ch, got, want)
		}
	}
	if Channel(42).String() != "Channel(42)" {
		t.Error("unknown channel string wrong")
	}
}

func TestRates(t *testing.T) {
	r := PaperRates()
	if r.ACC != 4000 || r.AUD != 48000 || r.EPT != 96000 || r.PWR != 12000 || r.MAG != 100 {
		t.Errorf("paper rates wrong: %+v", r)
	}
	s := r.Scaled(10)
	if s.AUD != 4800 || s.MAG != 10 {
		t.Errorf("scaled rates wrong: %+v", s)
	}
	for _, ch := range AllChannels {
		if r.Of(ch) <= 0 {
			t.Errorf("Of(%v) = %v", ch, r.Of(ch))
		}
	}
	if (Rates{}).Of(Channel(42)) != 0 {
		t.Error("unknown channel rate should be 0")
	}
}

func TestChannelCounts(t *testing.T) {
	want := map[Channel]int{ACC: 6, TMP: 1, MAG: 3, AUD: 2, EPT: 1, PWR: 1}
	for ch, n := range want {
		if got := Channels(ch); got != n {
			t.Errorf("Channels(%v) = %d, want %d (Table II)", ch, got, n)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Rates.ACC = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rate: want error")
	}
	bad = DefaultConfig()
	bad.GainSigma = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative gain sigma: want error")
	}
	bad = DefaultConfig()
	bad.MainsHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero mains: want error")
	}
}

func TestAcquireShapes(t *testing.T) {
	tr := testTrace(t)
	cfg := testConfig()
	for _, ch := range AllChannels {
		sig, err := Acquire(tr, ch, cfg, 1)
		if err != nil {
			t.Fatalf("%v: %v", ch, err)
		}
		if err := sig.Validate(); err != nil {
			t.Fatalf("%v: %v", ch, err)
		}
		if sig.Channels() != Channels(ch) {
			t.Errorf("%v: channels = %d, want %d", ch, sig.Channels(), Channels(ch))
		}
		wantRate := cfg.Rates.Of(ch)
		if sig.Rate != wantRate {
			t.Errorf("%v: rate = %v, want %v", ch, sig.Rate, wantRate)
		}
		// Frame drops shorten the signal slightly; it must stay close to
		// the trace duration.
		if d := sig.Duration(); d < tr.Duration()*0.95 || d > tr.Duration()*1.01 {
			t.Errorf("%v: duration %v vs trace %v", ch, d, tr.Duration())
		}
		for c := range sig.Data {
			for i, v := range sig.Data[c] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%v: non-finite sample at [%d][%d]", ch, c, i)
				}
			}
		}
	}
}

func TestAcquireAll(t *testing.T) {
	tr := testTrace(t)
	sigs, err := AcquireAll(tr, testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 6 {
		t.Fatalf("channels = %d, want 6", len(sigs))
	}
}

func TestAcquireDeterministicPerSeed(t *testing.T) {
	tr := testTrace(t)
	cfg := testConfig()
	a1, err := Acquire(tr, AUD, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Acquire(tr, AUD, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Len() != a2.Len() {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a1.Data[0] {
		if a1.Data[0][i] != a2.Data[0][i] {
			t.Fatal("same seed produced different samples")
		}
	}
	a3, err := Acquire(tr, AUD, cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	same := a1.Len() == a3.Len()
	if same {
		diff := false
		for i := range a1.Data[0] {
			if a1.Data[0][i] != a3.Data[0][i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical signals")
	}
}

// corr0 is the lag-0 correlation over the common prefix of two
// single-channel signals.
func corr0(a, b *sigproc.Signal) float64 {
	n := min(a.Len(), b.Len())
	return sigproc.Correlation(a.Data[0][:n], b.Data[0][:n])
}

func TestStrongChannelsCorrelateAcrossRuns(t *testing.T) {
	// Two simulated runs of the same print with time noise DISABLED (the
	// printer package tests time noise; here we isolate sensor information
	// content): ACC from run 1 and run 2 must correlate strongly at lag 0,
	// while raw EPT must not — its mains phase is random per run, which is
	// exactly why the paper drops the raw EPT signal and keeps only its
	// spectrogram.
	cfg := slicer.DefaultConfig()
	cfg.TotalHeight = 0.2
	prog, err := slicer.Slice(slicer.Gear(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := testConfig()
	scfg.FrameDropRate = 0 // keep sample-exact alignment
	acquire := func(seed int64, ch Channel) *sigproc.Signal {
		tr, err := printer.Run(prog, printer.UM3(), printer.Options{
			Seed: seed, TraceRate: 1000, InitialHotend: 200, InitialBed: 58,
			DisableNoise: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		sig, err := Acquire(tr, ch, scfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		return sig
	}
	// A second, geometrically different print (grid infill) serves as the
	// "unrelated" signal: a channel is informative when it correlates with
	// the same print much better than with a different print. Raw EPT is
	// hum-only: its correlation reflects the random mains phase difference
	// regardless of what was printed.
	gridCfg := cfg
	gridCfg.Infill = slicer.InfillGridPattern
	gridProg, err := slicer.Slice(slicer.Gear(), gridCfg)
	if err != nil {
		t.Fatal(err)
	}
	acquireProg := func(p *gcode.Program, seed int64, ch Channel) *sigproc.Signal {
		tr, err := printer.Run(p, printer.UM3(), printer.Options{
			Seed: seed, TraceRate: 1000, InitialHotend: 200, InitialBed: 58,
			DisableNoise: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		sig, err := Acquire(tr, ch, scfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		return sig
	}
	for _, ch := range []Channel{ACC, AUD} {
		same := math.Abs(corr0(acquire(100, ch), acquire(200, ch)))
		diff := math.Abs(corr0(acquire(100, ch), acquireProg(gridProg, 200, ch)))
		if same < 0.6 {
			t.Errorf("%v same-print correlation = %v, want > 0.6", ch, same)
		}
		if same-diff < 0.3 {
			t.Errorf("%v: same-print corr %v does not dominate different-print corr %v", ch, same, diff)
		}
	}
	eptSame := math.Abs(corr0(acquire(100, EPT), acquire(200, EPT)))
	eptDiff := math.Abs(corr0(acquire(100, EPT), acquireProg(gridProg, 200, EPT)))
	if math.Abs(eptSame-eptDiff) > 0.2 {
		t.Errorf("raw EPT distinguishes prints (same %v vs diff %v); it should be hum-dominated", eptSame, eptDiff)
	}
}

func TestEPTDominatedByMains(t *testing.T) {
	tr := testTrace(t)
	cfg := testConfig()
	cfg.FrameDropRate = 0
	sig, err := Acquire(tr, EPT, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	// The mains hum amplitude (10) dwarfs the drive component (~0.06):
	// check the RMS is close to a pure 10-amplitude sine.
	rms := sig.RMS()[0]
	if rms < 5 || rms > 12 {
		t.Errorf("EPT RMS = %v, want mains-dominated (~7)", rms)
	}
}

func TestFrameDropsShortenSignal(t *testing.T) {
	tr := testTrace(t)
	cfg := testConfig()
	cfg.FrameDropRate = 5 // aggressive, to make the effect visible
	cfg.FrameDropMax = 10
	with, err := Acquire(tr, ACC, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FrameDropRate = 0
	without, err := Acquire(tr, ACC, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if with.Len() >= without.Len() {
		t.Errorf("frame drops did not shorten: %d vs %d", with.Len(), without.Len())
	}
}

func TestGainDriftVariesAcrossRuns(t *testing.T) {
	tr := testTrace(t)
	cfg := testConfig()
	cfg.FrameDropRate = 0
	cfg.NoiseLevel = 0
	cfg.GainSigma = 0.3
	s1, err := Acquire(tr, PWR, cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Acquire(tr, PWR, cfg, 22)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := s1.RMS()[0], s2.RMS()[0]
	if math.Abs(r1-r2)/math.Max(r1, r2) < 0.01 {
		t.Errorf("gain drift absent: RMS %v vs %v", r1, r2)
	}
}

func TestAcquireErrors(t *testing.T) {
	if _, err := Acquire(&printer.Trace{Rate: 100}, ACC, testConfig(), 1); err == nil {
		t.Error("empty trace: want error")
	}
	tr := testTrace(t)
	bad := testConfig()
	bad.Rates.MAG = 0
	if _, err := Acquire(tr, MAG, bad, 1); err == nil {
		t.Error("invalid config: want error")
	}
	if _, err := Acquire(tr, Channel(42), testConfig(), 1); err == nil {
		t.Error("unknown channel: want error")
	}
}

func TestTMPWeaklyCorrelatedWithMotion(t *testing.T) {
	tr := testTrace(t)
	cfg := testConfig()
	sig, err := Acquire(tr, TMP, cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	// TMP should be nearly flat: std much smaller than mean.
	mean := sig.Mean()[0]
	std := sig.Std()[0]
	if std > math.Abs(mean)*0.2 {
		t.Errorf("TMP std %v too large relative to mean %v", std, mean)
	}
}
