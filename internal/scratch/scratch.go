// Package scratch is the reusable-buffer machinery behind the repo's
// allocation-free hot paths (DESIGN.md §13). The synchronization pipeline —
// STFT frames, TDE similarity arrays and prefix sums, DTW cost matrices,
// DWM search windows, Monitor session buffers — used to allocate fresh
// slices on every window of every signal, which at fleet scale turns the
// garbage collector into the bottleneck long before the CPU saturates.
//
// The package deliberately stays tiny: a typed sync.Pool wrapper plus a
// slice-resizing helper. Each hot package owns a composite scratch struct
// (all the slices one operation needs) and pools whole structs, so a hot
// operation costs one Get and one Put regardless of how many internal
// buffers it touches, and pooling a pointer-to-struct through sync.Pool
// allocates nothing in steady state.
//
// # Ownership rules
//
//   - A pooled buffer is owned by exactly one goroutine between Get and Put.
//   - Anything returned to a caller must be copied out of scratch first;
//     returning a view of a pooled buffer is an aliasing bug that corrupts
//     the caller's data on the next Get.
//   - Buffers obtained from Resize have unspecified contents; the owner must
//     fully overwrite (or clear) every element it will read.
//
// # Verifying pooled paths
//
// SetEnabled(false) turns every Pool into a plain allocator, so a pooled
// code path can be run twice — once against recycled buffers, once against
// fresh ones — and compared byte for byte. SetPoison(true) additionally
// fills buffers with poison (each pool's Poison hook, typically NaN) as
// they are returned, so any path that reads recycled contents it did not
// overwrite produces loudly wrong output instead of silently lucky output.
// Both switches exist for tests; production leaves pooling on and poison
// off.
package scratch

import (
	"sync"
	"sync/atomic"
)

var (
	disabled  atomic.Bool // zero value: pooling enabled
	poisoning atomic.Bool
)

// SetEnabled switches buffer reuse on or off process-wide. Disabled pools
// hand out fresh allocations and drop returned buffers, which restores the
// pre-pooling allocation behavior exactly; it exists so equivalence tests
// can diff pooled output against unpooled output.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether buffer reuse is on (the default).
func Enabled() bool { return !disabled.Load() }

// SetPoison makes every Pool run its Poison hook on returned buffers, so a
// consumer that reads recycled contents it never overwrote computes visibly
// corrupt results. Test-only; it has no effect while pooling is disabled.
func SetPoison(on bool) { poisoning.Store(on) }

// Poisoning reports whether returned buffers are being poisoned.
func Poisoning() bool { return poisoning.Load() }

// Pool is a typed sync.Pool of *T. T is a package's composite scratch
// struct: every slice one hot operation needs, pooled as a unit.
type Pool[T any] struct {
	// New constructs an empty scratch struct. Required.
	New func() *T
	// Poison, if set, scribbles over the struct's buffers; it runs on Put
	// while poison mode is on (see SetPoison).
	Poison func(*T)

	p sync.Pool
}

// Get returns a scratch struct, recycled when one is available. The
// struct's slices keep whatever length and contents their previous owner
// left; use Resize before reading or writing them.
func (pl *Pool[T]) Get() *T {
	if Enabled() {
		if v := pl.p.Get(); v != nil {
			return v.(*T)
		}
	}
	return pl.New()
}

// Put returns a scratch struct for reuse. The caller must not touch x, or
// any slice inside it, after Put. nil is ignored.
func (pl *Pool[T]) Put(x *T) {
	if x == nil || !Enabled() {
		return
	}
	if Poisoning() && pl.Poison != nil {
		pl.Poison(x)
	}
	pl.p.Put(x)
}

// Resize returns a slice of length n backed by s when s has the capacity,
// and by a fresh allocation otherwise. Contents are unspecified either way:
// the caller owns every element and must overwrite (or clear) what it
// reads. Typical use inside a pooled struct:
//
//	buf.prefix = scratch.Resize(buf.prefix, n+1)
func Resize[E any](s []E, n int) []E {
	if cap(s) >= n {
		return s[:n]
	}
	// Round up so a slightly growing workload (e.g. DWM search windows
	// clipped near signal edges) converges instead of reallocating on every
	// small size change.
	return make([]E, n, n+n/4)
}

// ResizeZero is Resize followed by clearing every element.
func ResizeZero[E any](s []E, n int) []E {
	s = Resize(s, n)
	clear(s)
	return s
}
