package ingest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"nsync/internal/sigproc"
)

// startRouter serves a sharded router on a loopback listener and shuts it
// down at cleanup, mirroring startServer.
func startRouter(t *testing.T, shards int, cfg Config) (addr string, r *Router) {
	t.Helper()
	r, err := NewRouter(shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- r.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return l.Addr().String(), r
}

// TestRouterPlacement: every session lands on exactly the shard ShardFor
// predicts, and the shard counts sum to the fleet total.
func TestRouterPlacement(t *testing.T) {
	addr, r := startRouter(t, 4, Config{Factory: &countFactory{}})
	const sessions = 16
	var clients []*Client
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("printer-%02d", i)
		c, err := Dial(addr, oneChanHello(id, i), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	if n := r.SessionCount(); n != sessions {
		t.Fatalf("SessionCount() = %d, want %d", n, sessions)
	}
	used := map[int]bool{}
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("printer-%02d", i)
		shard := r.ShardFor(id)
		used[shard] = true
		r.shards[shard].mu.Lock()
		_, ok := r.shards[shard].sessions[id]
		r.shards[shard].mu.Unlock()
		if !ok {
			t.Errorf("session %s not on shard %d", id, shard)
		}
	}
	// 16 ids over 4 shards: a placement that funnels everything onto one
	// shard would defeat the point. Jump hash spreads uniformly; with these
	// ids every shard is hit.
	if len(used) < 2 {
		t.Errorf("all sessions on %d shard(s)", len(used))
	}
}

// TestRouterResumeStaysOnShard replays defect-laden streams with forced
// mid-print reconnects through the router: the reconnecting client must be
// routed back to the shard retaining its session, or the resume (and the
// verdict) is lost.
func TestRouterResumeStaysOnShard(t *testing.T) {
	f := &countFactory{}
	addr, _ := startRouter(t, 3, Config{Factory: f, ReadTimeout: 10 * time.Second, Retention: 30 * time.Second})
	var wg sync.WaitGroup
	errCh := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + i)))
			sig := noiseML(rng, 100, 1, 600)
			id := fmt.Sprintf("reconnect-%d", i)
			v, err := Replay(addr, oneChanHello(id, i), []*sigproc.Signal{sig}, ReplayOptions{
				FrameSamples: 40, Seed: int64(i), ShuffleWindow: 4, DupProb: 0.1, ReconnectAfter: 5,
			})
			if err != nil {
				errCh <- fmt.Errorf("%s: %w", id, err)
				return
			}
			if v.Reason != "finished" {
				errCh <- fmt.Errorf("%s: reason %q", id, v.Reason)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Every session's full stream must have arrived despite the reconnects.
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, s := range f.sinks {
		if s.samples[0] != 600 {
			t.Errorf("sink %d got %d samples, want 600", i, s.samples[0])
		}
	}
}

// TestRouterFleetWideTenantQuota: shards share one tenant table, so a
// tenant's quota holds across the fleet — it cannot be multiplied by
// spreading session ids over shards.
func TestRouterFleetWideTenantQuota(t *testing.T) {
	addr, r := startRouter(t, 4, Config{Factory: &countFactory{}, TenantQuota: TenantQuota{MaxSessions: 2}})
	admitted := 0
	var clients []*Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	shardsHit := map[int]bool{}
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("spread-%d", i)
		h := oneChanHello(id, 1)
		h.Tenant = "plant-a"
		c, err := Dial(addr, h, 5*time.Second)
		if err == nil {
			admitted++
			clients = append(clients, c)
			shardsHit[r.ShardFor(id)] = true
			continue
		}
		var se *ServerError
		if !errors.As(err, &se) || !strings.Contains(se.Msg, "session quota") {
			t.Fatalf("%s: got %v, want session-quota ServerError", id, err)
		}
	}
	if admitted != 2 {
		t.Fatalf("tenant admitted %d sessions across shards, want 2", admitted)
	}
	if r.Tenants().Rejected() != 4 {
		t.Errorf("Rejected() = %d, want 4", r.Tenants().Rejected())
	}
	_ = shardsHit // placement is incidental; the quota must hold regardless
}

// TestRouterShutdownDrains: Shutdown drains every shard — each attached
// client gets its final verdict unasked, and Serve returns nil.
func TestRouterShutdownDrains(t *testing.T) {
	r, err := NewRouter(2, Config{Factory: &countFactory{}, ReadTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- r.Serve(l) }()
	addr := l.Addr().String()

	// Pick ids that land on different shards so both drain paths run.
	var ids []string
	for i := 0; len(ids) < 2 && i < 64; i++ {
		id := fmt.Sprintf("drain-%d", i)
		if len(ids) == 0 || r.ShardFor(id) != r.ShardFor(ids[0]) {
			ids = append(ids, id)
		}
	}
	if len(ids) != 2 {
		t.Fatal("could not find ids on two shards")
	}
	var clients []*Client
	for _, id := range ids {
		c, err := Dial(addr, oneChanHello(id, 1), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.SendData(0, 0, make([]float64, 10)); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- r.Shutdown(ctx) }()
	for i, c := range clients {
		v, err := c.AwaitVerdict(10 * time.Second)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if v.Reason != "drained" {
			t.Errorf("client %d verdict reason %q, want drained", i, v.Reason)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve after drain: %v", err)
	}
	if n := r.SessionCount(); n != 0 {
		t.Errorf("%d sessions survive shutdown", n)
	}
}
