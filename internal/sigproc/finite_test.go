package sigproc

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestCheckFinite(t *testing.T) {
	s := New(100, 2, 50)
	if err := s.CheckFinite(); err != nil {
		t.Fatalf("zeroed signal: %v", err)
	}
	var nilSig *Signal
	if err := nilSig.CheckFinite(); err != nil {
		t.Fatalf("nil signal: %v", err)
	}

	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		s := New(100, 2, 50)
		s.Data[1][7] = bad
		err := s.CheckFinite()
		if !errors.Is(err, ErrNonFinite) {
			t.Errorf("poisoned with %v: err = %v, want ErrNonFinite", bad, err)
		}
	}
}

func TestReadSignalRejectsNonFinite(t *testing.T) {
	s := New(100, 1, 10)
	s.Data[0][3] = math.NaN()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSignal(&buf); !errors.Is(err, ErrNonFinite) {
		t.Errorf("ReadSignal of NaN-poisoned file: err = %v, want ErrNonFinite", err)
	}
}

func TestMultiChannelDistanceRejectsNonFiniteResult(t *testing.T) {
	x := New(100, 1, 10)
	y := New(100, 1, 10)
	x.Data[0][0] = math.NaN()
	if _, err := MultiChannelDistance(MAE, x, y); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN input: err = %v, want ErrNonFinite", err)
	}
	x.Data[0][0] = math.Inf(1)
	if _, err := MultiChannelDistance(Euclidean, x, y); !errors.Is(err, ErrNonFinite) {
		t.Errorf("Inf input: err = %v, want ErrNonFinite", err)
	}
}

func TestMultiChannelSimilarityRejectsNonFiniteResult(t *testing.T) {
	x := New(100, 1, 10)
	y := New(100, 1, 10)
	for i := range x.Data[0] {
		x.Data[0][i] = float64(i)
		y.Data[0][i] = float64(i)
	}
	x.Data[0][4] = math.NaN()
	if _, err := MultiChannelSimilarity(Correlation, x, y); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN input: err = %v, want ErrNonFinite", err)
	}
}
