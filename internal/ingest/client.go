package ingest

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"

	"nsync/internal/resilience"
	"nsync/internal/sigproc"
)

// ServerError is a FrameError received from the server: the server is
// healthy and reachable but refused or terminated the session (shed,
// evicted, malformed input). Reconnecting will not help, so it is never
// classified as transient.
type ServerError struct{ Msg string }

// Error implements error.
func (e *ServerError) Error() string { return "ingest: server: " + e.Msg }

// Hello describes the session a client wants to open.
type Hello struct {
	SessionID string
	// Priority orders sessions for load shedding: lower sheds first.
	Priority int
	Channels []ChannelSpec
	// Tenant is the fleet tenant the session belongs to; the server enforces
	// admission quotas per tenant. Empty means the anonymous tenant.
	Tenant string
	// Model optionally selects a trained model by content address when the
	// server runs a shared model pool. Empty means the server's default.
	Model string
}

// Client is one connection's worth of framed-protocol state. Reconnecting
// means Dial-ing a new Client with the same session id and resuming from
// the committed counts the HelloAck reports.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	// Committed is the server's per-channel committed sample count at
	// handshake time — the resume point.
	Committed []uint64
}

// Dial connects, handshakes, and returns a client ready to send data
// frames. On resume, Committed tells the caller where to pick up each
// channel.
func Dial(addr string, h Hello, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn)}
	hello := &Frame{
		Type: FrameHello, SessionID: h.SessionID, Priority: h.Priority,
		Channels: h.Channels, Tenant: h.Tenant, Model: h.Model,
	}
	conn.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck // net.Conn deadlines
	if err := WriteFrame(conn, hello); err != nil {
		conn.Close() //nolint:errcheck // already failing
		return nil, err
	}
	f, err := ReadFrame(c.br)
	if err != nil {
		conn.Close() //nolint:errcheck // already failing
		return nil, err
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck // net.Conn deadlines
	switch f.Type {
	case FrameHelloAck:
		c.Committed = f.Committed
		return c, nil
	case FrameError:
		conn.Close() //nolint:errcheck // already failing
		return nil, &ServerError{Msg: f.Message}
	default:
		conn.Close() //nolint:errcheck // already failing
		return nil, fmt.Errorf("%w: %v reply to hello", ErrMalformed, f.Type)
	}
}

// SendData sends one data frame: lane-interleaved values for channel ch
// whose first sample has stream index seq.
func (c *Client) SendData(ch int, seq uint64, values []float64) error {
	return WriteFrame(c.conn, &Frame{Type: FrameData, Channel: ch, Seq: seq, Values: values})
}

// SendEOS declares channel ch's total sample count.
func (c *Client) SendEOS(ch int, total uint64) error {
	return WriteFrame(c.conn, &Frame{Type: FrameEOS, Channel: ch, Seq: total})
}

// Finish asks for the final verdict and waits for it.
func (c *Client) Finish(timeout time.Duration) (*Verdict, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	if err := WriteFrame(c.conn, &Frame{Type: FrameFinish}); err != nil {
		return nil, err
	}
	c.conn.SetReadDeadline(time.Now().Add(timeout)) //nolint:errcheck // net.Conn deadlines
	f, err := ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case FrameVerdict:
		return f.Verdict, nil
	case FrameError:
		return nil, &ServerError{Msg: f.Message}
	default:
		return nil, fmt.Errorf("%w: %v reply to finish", ErrMalformed, f.Type)
	}
}

// AwaitVerdict blocks until the server sends a terminal frame — the drain
// verdict on server shutdown, or an error. Use it instead of Finish when
// the server, not the client, decides when the session ends.
func (c *Client) AwaitVerdict(timeout time.Duration) (*Verdict, error) {
	if timeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(timeout)) //nolint:errcheck // net.Conn deadlines
	}
	for {
		f, err := ReadFrame(c.br)
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case FrameVerdict:
			return f.Verdict, nil
		case FrameError:
			return nil, &ServerError{Msg: f.Message}
		}
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ---- Replay ----

// ReplayOptions injects transport defects into a replayed stream. The
// defects are seeded and deterministic: the same options replay the same
// schedule, which is what lets tests assert verdict equivalence.
type ReplayOptions struct {
	// FrameSamples is how many samples each data frame carries (default 100).
	FrameSamples int
	// Seed drives the defect schedule.
	Seed int64
	// ShuffleWindow permutes the send order within consecutive windows of
	// this many frames (0 or 1 = in order). Lossless: everything still
	// arrives, just out of order, exercising the resequencer.
	ShuffleWindow int
	// DupProb is the probability a frame is sent twice. Lossless.
	DupProb float64
	// DropProb is the probability a frame is never sent. Lossy: the server
	// fills the gap and detection sees synthetic stuck-at samples.
	DropProb float64
	// ReconnectAfter forces a connection drop and resume after every this
	// many sent frames (0 = never).
	ReconnectAfter int
	// CutChannels lists channel indexes whose data stops at half their
	// length while EOS still declares the full extent — a sensor that died
	// mid-print. The server fills the missing half and health quarantine
	// retires the channel.
	CutChannels []int
	// MaxDials bounds connection attempts, first dial included (default 8).
	MaxDials int
	// DialBackoff is the base delay between dial attempts; retries back off
	// exponentially (seeded jitter included) up to DialBackoffMax
	// (defaults 10ms and 2s). A fleet of clients orphaned by a daemon
	// restart therefore spreads its reconnects instead of stampeding.
	DialBackoff    time.Duration
	DialBackoffMax time.Duration
	// Timeout bounds each dial and the final verdict wait (default 30s).
	Timeout time.Duration
	// Stats, when set, receives measurements from the replay — the fleet
	// load generator reads verdict latency from here.
	Stats *ReplayStats
}

// ReplayStats carries measurements out of one Replay call.
type ReplayStats struct {
	// FinishLatency is the time from sending Finish to the verdict arriving:
	// the tail flush plus the server's final decision, the latency an
	// operator waits on at the end of a print.
	FinishLatency time.Duration
	// Dials is how many connections the replay used (1 = no reconnects).
	Dials int
}

type replayFrame struct {
	ch     int
	seq    uint64
	values []float64
}

// Replay streams one signal per channel to addr as session h, injecting the
// configured defects, then sends per-channel EOS (always declaring each
// channel's full extent) and Finish, and returns the server's verdict.
// Transient connection failures mid-stream reconnect and resume from the
// server's committed counts; a ServerError aborts immediately.
func Replay(addr string, h Hello, signals []*sigproc.Signal, opt ReplayOptions) (*Verdict, error) {
	if len(signals) != len(h.Channels) {
		return nil, fmt.Errorf("ingest: %d signals for %d channels", len(signals), len(h.Channels))
	}
	if opt.FrameSamples <= 0 {
		opt.FrameSamples = 100
	}
	if opt.MaxDials <= 0 {
		opt.MaxDials = 8
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	if opt.DialBackoff <= 0 {
		opt.DialBackoff = 10 * time.Millisecond
	}
	if opt.DialBackoffMax <= 0 {
		opt.DialBackoffMax = 2 * time.Second
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	frames, totals := buildSchedule(signals, h.Channels, rng, opt)

	// dial retries transient connection failures with seeded, jittered
	// exponential backoff, spending whatever remains of the MaxDials budget.
	// ECONNREFUSED is transient here: a restarting daemon refuses connections
	// until its listener is back, and that window is exactly what the backoff
	// is for. So is the server's "already attached" rejection: a deliberate
	// reconnect can out-race the server noticing the old connection died, and
	// one backoff later the session is detached and ours again. Every other
	// ServerError (quota, shed, layout) stays fatal.
	dials := 0
	dial := func() (*Client, error) {
		budget := opt.MaxDials - dials
		if budget < 1 {
			return nil, fmt.Errorf("ingest: dial budget exhausted after %d attempts", dials)
		}
		return resilience.Do(context.Background(), resilience.Policy{
			MaxAttempts: budget,
			BaseDelay:   opt.DialBackoff,
			MaxDelay:    opt.DialBackoffMax,
			Seed:        opt.Seed + int64(dials),
			Classify: func(err error) bool {
				if resilience.IsTransientNetwork(err) {
					return true
				}
				var se *ServerError
				return errors.As(err, &se) && strings.Contains(se.Msg, "already attached")
			},
		}, func(context.Context) (*Client, error) {
			dials++
			return Dial(addr, h, opt.Timeout)
		})
	}
	c, err := dial()
	if err != nil {
		return nil, err
	}
	defer func() {
		if c != nil {
			c.Close() //nolint:errcheck // best-effort cleanup
		}
	}()

	// reconnect re-dials and rewinds the schedule to the start: the server's
	// committed counts can move BACKWARD across a reconnect (a crashed daemon
	// recovers from its last durable snapshot, behind what it acked before
	// dying), so the resume point must come from the fresh HelloAck, not from
	// how far this client got. Re-sent frames wholly behind the new commit
	// point are skipped below; partial overlaps are trimmed server-side.
	pos := 0
	reconnect := func() error {
		c.Close() //nolint:errcheck // tearing down on purpose
		var err error
		if c, err = dial(); err != nil {
			return err
		}
		pos = 0
		return nil
	}
	sent := 0
	for {
		for pos < len(frames) {
			fr := frames[pos]
			lanes := uint64(h.Channels[fr.ch].Lanes)
			if int(fr.ch) < len(c.Committed) {
				if committed := c.Committed[fr.ch]; fr.seq+uint64(len(fr.values))/lanes <= committed {
					pos++ // wholly behind the server's commit point after a resume
					continue
				}
			}
			if err := c.SendData(fr.ch, fr.seq, fr.values); err != nil {
				if !resilience.IsTransientNetwork(err) {
					return nil, err
				}
				if err := reconnect(); err != nil {
					return nil, err
				}
				continue // retry the same frame on the new connection
			}
			pos++
			sent++
			if opt.ReconnectAfter > 0 && sent%opt.ReconnectAfter == 0 && pos < len(frames) {
				if err := reconnect(); err != nil {
					return nil, err
				}
			}
		}
		// EOS and Finish ride the same resume loop: a daemon killed during
		// the finish phase recovers the session detached, and the reconnect
		// re-sends the (mostly committed-skipped) tail before finishing again.
		v, err := finishOnce(c, totals, opt)
		if err != nil && resilience.IsTransientNetwork(err) {
			if rerr := reconnect(); rerr != nil {
				return nil, rerr
			}
			continue
		}
		if opt.Stats != nil {
			opt.Stats.Dials = dials
		}
		return v, err
	}
}

// finishOnce sends every channel's EOS and asks for the verdict on the
// current connection.
func finishOnce(c *Client, totals []uint64, opt ReplayOptions) (*Verdict, error) {
	for ch, total := range totals {
		if err := c.SendEOS(ch, total); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	v, err := c.Finish(opt.Timeout)
	if err == nil && opt.Stats != nil {
		opt.Stats.FinishLatency = time.Since(start)
	}
	return v, err
}

// buildSchedule turns the per-channel signals into a defect-injected frame
// send order, returning the frames and each channel's declared total.
func buildSchedule(signals []*sigproc.Signal, specs []ChannelSpec, rng *rand.Rand, opt ReplayOptions) ([]replayFrame, []uint64) {
	totals := make([]uint64, len(signals))
	perChannel := make([][]replayFrame, len(signals))
	for ch, sig := range signals {
		lanes := specs[ch].Lanes
		n := sig.Len()
		totals[ch] = uint64(n)
		limit := n
		for _, cut := range opt.CutChannels {
			if ch == cut {
				limit = n / 2
			}
		}
		for start := 0; start < limit; start += opt.FrameSamples {
			end := min(start+opt.FrameSamples, limit)
			values := make([]float64, 0, (end-start)*lanes)
			for i := start; i < end; i++ {
				for l := 0; l < lanes; l++ {
					values = append(values, sig.Data[l][i])
				}
			}
			perChannel[ch] = append(perChannel[ch], replayFrame{ch: ch, seq: uint64(start), values: values})
		}
	}
	// Round-robin across channels approximates time-aligned live capture.
	var ordered []replayFrame
	for i := 0; ; i++ {
		any := false
		for ch := range perChannel {
			if i < len(perChannel[ch]) {
				ordered = append(ordered, perChannel[ch][i])
				any = true
			}
		}
		if !any {
			break
		}
	}
	// Defects: drop, duplicate, then shuffle within windows.
	var out []replayFrame
	for _, fr := range ordered {
		if opt.DropProb > 0 && rng.Float64() < opt.DropProb {
			continue
		}
		out = append(out, fr)
		if opt.DupProb > 0 && rng.Float64() < opt.DupProb {
			out = append(out, fr)
		}
	}
	if w := opt.ShuffleWindow; w > 1 {
		for start := 0; start < len(out); start += w {
			end := min(start+w, len(out))
			rng.Shuffle(end-start, func(i, j int) {
				out[start+i], out[start+j] = out[start+j], out[start+i]
			})
		}
	}
	return out, totals
}
