// Package tde implements Time Delay Estimation: finding the best location of
// a short signal y inside a longer signal x (Section V-B of the paper), via
// the sliding method of Eqs. (1)-(2), plus the biased variant TDEB used by
// Dynamic Window Matching (Section VI-B, Fig. 5).
package tde

import (
	"errors"
	"fmt"
	"math"

	"nsync/internal/obs"
	"nsync/internal/scratch"
	"nsync/internal/sigproc"
)

// ErrTooShort is returned when x is shorter than y, so y cannot appear in x.
var ErrTooShort = errors.New("tde: x is shorter than y")

// estimates counts similarity-array evaluations, the TDE work unit shared by
// Delay and DelayBiasedAt (see DESIGN.md §10).
var estimates = obs.GetCounter("tde.estimates")

// corrBuf is the scratch of one delay estimation: the similarity and biased
// arrays plus everything the fast correlation path needs. Delay and the
// DelayBiased variants pool whole corrBufs, so one DWM step costs one pool
// round-trip instead of half a dozen slice allocations per window
// (DESIGN.md §13). Estimators stay stateless — scratch never lives on the
// Estimator, which is documented as safe to share across goroutines.
type corrBuf struct {
	scores  []float64 // similarity array s[n]
	biased  []float64 // TDEB-weighted copy of scores
	prefix  []float64 // prefix sums of x
	prefix2 []float64 // prefix sums of x^2
	dots    []float64 // sliding cross-terms
	// fx/fy are FFT operands; fz is the whitened cross-spectrum of the
	// GCC-PHAT path.
	fx, fy, fz []complex128

	// winData backs the sliding window view of the naive (non-fast) path.
	winData [][]float64
}

var corrPool = scratch.Pool[corrBuf]{
	New: func() *corrBuf { return &corrBuf{} },
	Poison: func(cb *corrBuf) {
		poisonFloats(cb.scores)
		poisonFloats(cb.biased)
		poisonFloats(cb.prefix)
		poisonFloats(cb.prefix2)
		poisonFloats(cb.dots)
		nan := complex(math.NaN(), math.NaN())
		for _, s := range [][]complex128{cb.fx, cb.fy, cb.fz} {
			for i := range s {
				s[i] = nan
			}
		}
	},
}

func poisonFloats(s []float64) {
	for i := range s {
		s[i] = math.NaN()
	}
}

// Estimator performs time delay estimation with a configurable similarity
// function. The zero value is not usable; construct with New.
type Estimator struct {
	sim     sigproc.SimilarityFunc
	stacked bool
	// fastCorr enables the FFT/prefix-sum fast path, valid only for the
	// default Pearson-correlation similarity with channel averaging.
	fastCorr bool
}

// Option configures an Estimator.
type Option func(*Estimator)

// WithSimilarity replaces the default Pearson-correlation similarity.
// Custom similarities use the naive sliding method rather than the FFT fast
// path.
func WithSimilarity(f sigproc.SimilarityFunc) Option {
	return func(e *Estimator) {
		e.sim = f
		e.fastCorr = false
	}
}

// WithoutFastPath forces the naive O(Nx*Ny) sliding method even for the
// default correlation similarity. Exists for equivalence tests and
// benchmarks.
func WithoutFastPath() Option {
	return func(e *Estimator) { e.fastCorr = false }
}

// WithStackedChannels makes the estimator flatten channels into one long
// vector instead of averaging per-channel scores. The paper found averaging
// (the default) reaches a higher SNR; stacking exists for the ablation.
func WithStackedChannels() Option {
	return func(e *Estimator) {
		e.stacked = true
		e.fastCorr = false
	}
}

// New returns an Estimator using the correlation coefficient, the NSYNC
// default similarity function.
func New(opts ...Option) *Estimator {
	e := &Estimator{sim: sigproc.Correlation, fastCorr: true}
	for _, o := range opts {
		o(e)
	}
	return e
}

// SimilarityArray computes s[n] = f(x[n:n+Ny], y) for n = 0..Nx-Ny
// (Eq. (1)). The returned slice has length Nx-Ny+1 and is owned by the
// caller (it never aliases pooled scratch).
func (e *Estimator) SimilarityArray(x, y *sigproc.Signal) ([]float64, error) {
	buf := corrPool.Get()
	defer corrPool.Put(buf)
	s, err := e.similarityInto(buf, x, y)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), s...), nil
}

// similarityInto computes the similarity array into buf.scores and returns
// it. The result aliases buf and is valid only until buf is pooled again.
func (e *Estimator) similarityInto(buf *corrBuf, x, y *sigproc.Signal) ([]float64, error) {
	nx, ny := x.Len(), y.Len()
	if nx < ny {
		return nil, fmt.Errorf("%w: len(x)=%d len(y)=%d", ErrTooShort, nx, ny)
	}
	if x.Channels() != y.Channels() {
		return nil, fmt.Errorf("tde: channel mismatch %d vs %d", x.Channels(), y.Channels())
	}
	estimates.Inc()
	if e.fastCorr {
		return fastCorrelationInto(buf, x, y), nil
	}
	scores := scratch.Resize(buf.scores, nx-ny+1)
	buf.scores = scores
	// Reusable sliding-window view of x; the similarity functions only read
	// their arguments, so one set of channel headers is resliced per
	// position instead of allocating a Signal per candidate delay.
	buf.winData = scratch.Resize(buf.winData, x.Channels())
	win := &sigproc.Signal{Rate: x.Rate, Data: buf.winData}
	for n := range scores {
		for c := range x.Data {
			buf.winData[c] = x.Data[c][n : n+ny]
		}
		var (
			s   float64
			err error
		)
		if e.stacked {
			s, err = sigproc.StackedSimilarity(e.sim, win, y)
		} else {
			s, err = sigproc.MultiChannelSimilarity(e.sim, win, y)
		}
		if err != nil {
			return nil, err
		}
		scores[n] = s
	}
	return scores, nil
}

// Delay returns n_delay = argmax_n s[n] (Eq. (2)): the sample offset in x at
// which y best matches, along with the winning similarity score.
func (e *Estimator) Delay(x, y *sigproc.Signal) (delay int, score float64, err error) {
	buf := corrPool.Get()
	defer corrPool.Put(buf)
	s, err := e.similarityInto(buf, x, y)
	if err != nil {
		return 0, 0, err
	}
	d := argmax(s)
	return d, s[d], nil
}

// DelayBiased implements TDEB: the similarity array is multiplied by a
// Gaussian window with standard deviation sigma (in samples) centered on the
// middle of the array before taking the argmax. Because raw correlation
// scores may be negative and the bias is a multiplicative positive weight,
// scores are first shifted to be non-negative; this keeps the bias monotone
// (a bigger window weight can only help, never flip the sign of the
// preference).
func (e *Estimator) DelayBiased(x, y *sigproc.Signal, sigma float64) (delay int, score float64, err error) {
	buf := corrPool.Get()
	defer corrPool.Put(buf)
	s, err := e.similarityInto(buf, x, y)
	if err != nil {
		return 0, 0, err
	}
	buf.biased = biasedScoresInto(scratch.Resize(buf.biased, len(s)), s, (len(s)-1)/2, sigma)
	d := argmax(buf.biased)
	return d, s[d], nil
}

// DelayBiasedAt is DelayBiased with the Gaussian bias centered on an
// arbitrary index of the similarity array instead of its middle. DWM needs
// this near the edges of the reference signal, where the extended search
// window is clipped and the predicted delay is no longer centered.
func (e *Estimator) DelayBiasedAt(x, y *sigproc.Signal, center int, sigma float64) (delay int, score float64, err error) {
	buf := corrPool.Get()
	defer corrPool.Put(buf)
	s, err := e.similarityInto(buf, x, y)
	if err != nil {
		return 0, 0, err
	}
	buf.biased = biasedScoresInto(scratch.Resize(buf.biased, len(s)), s, center, sigma)
	d := argmax(buf.biased)
	return d, s[d], nil
}

// BiasedScores applies the TDEB Gaussian bias, centered on the middle of the
// array, to a similarity array and returns the biased scores. The input is
// not modified.
func BiasedScores(s []float64, sigma float64) []float64 {
	return BiasedScoresAt(s, (len(s)-1)/2, sigma)
}

// BiasedScoresAt applies the TDEB Gaussian bias centered at the given index.
// Scores are first shifted to be non-negative so the multiplicative weight
// acts as a monotone bias.
func BiasedScoresAt(s []float64, center int, sigma float64) []float64 {
	return biasedScoresInto(make([]float64, len(s)), s, center, sigma)
}

// biasedScoresInto writes the biased scores into out (len(out) must equal
// len(s)) and returns out.
func biasedScoresInto(out, s []float64, center int, sigma float64) []float64 {
	if len(s) == 0 {
		return out
	}
	lo := s[0]
	for _, v := range s {
		if v < lo {
			lo = v
		}
	}
	for i, v := range s {
		out[i] = (v - lo) * gaussianWeight(i, center, sigma)
	}
	return out
}

func gaussianWeight(i, center int, sigma float64) float64 {
	if sigma <= 0 {
		if i == center {
			return 1
		}
		return 0
	}
	d := float64(i-center) / sigma
	return math.Exp(-0.5 * d * d)
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
