package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TenantQuota bounds one tenant's footprint on a server. The zero value is
// unlimited, so single-tenant deployments pay nothing for the machinery.
type TenantQuota struct {
	// MaxSessions caps a tenant's concurrent live sessions (attached or
	// retained), admission reservations included (0 = unlimited).
	MaxSessions int
	// MaxQueuedFrames caps a tenant's aggregate queued frames: once a
	// tenant's sessions hold this many frames in their queues, new sessions
	// from that tenant are rejected at admission (0 = unlimited). Existing
	// sessions are never cut by this quota — backpressure and the global
	// shed watermark already govern them.
	MaxQueuedFrames int
}

func (q TenantQuota) unlimited() bool { return q.MaxSessions <= 0 && q.MaxQueuedFrames <= 0 }

// tenant is one tenant's live accounting. sessions and pending are guarded
// by the owning table's mutex; depth is written on the session hot path and
// therefore atomic.
type tenant struct {
	id    string
	quota TenantQuota

	sessions int // admitted live sessions
	pending  int // admission reservations in flight (slot held, not yet admitted)
	depth    atomic.Int64
}

// TenantTable tracks per-tenant admission state. One table can be shared by
// every shard of a Router so quotas hold fleet-wide, not per shard; it is
// safe for concurrent use. Its mutex nests strictly inside Server.mu — the
// table never calls back into a server.
type TenantTable struct {
	mu       sync.Mutex
	def      TenantQuota
	quotas   map[string]TenantQuota
	tenants  map[string]*tenant
	rejected atomic.Int64
}

// NewTenantTable builds a table whose tenants default to def. Per-tenant
// overrides come from SetQuota.
func NewTenantTable(def TenantQuota) *TenantTable {
	return &TenantTable{def: def, quotas: map[string]TenantQuota{}, tenants: map[string]*tenant{}}
}

// SetQuota overrides the quota for one tenant id. It applies to subsequent
// admissions; sessions already admitted are unaffected.
func (t *TenantTable) SetQuota(id string, q TenantQuota) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.quotas[id] = q
	if tn, ok := t.tenants[id]; ok {
		tn.quota = q
	}
}

// Sessions reports a tenant's current live session count (reservations not
// included).
func (t *TenantTable) Sessions(id string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tn, ok := t.tenants[id]; ok {
		return tn.sessions
	}
	return 0
}

// QueuedFrames reports a tenant's aggregate queued-frame depth.
func (t *TenantTable) QueuedFrames(id string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tn, ok := t.tenants[id]; ok {
		return int(tn.depth.Load())
	}
	return 0
}

// Rejected reports how many admissions the table has refused over quota.
func (t *TenantTable) Rejected() int64 { return t.rejected.Load() }

func (t *TenantTable) quotaFor(id string) TenantQuota {
	if q, ok := t.quotas[id]; ok {
		return q
	}
	return t.def
}

// reserve claims an admission slot for id, returning the tenant handle or a
// rejection message. A successful reservation MUST be resolved by exactly
// one commit (admission succeeded) or one release with admitted=false
// (admission failed) — the slot counts against MaxSessions either way, which
// is what makes a concurrent Hello burst unable to over-admit past the
// quota while the factory acquire runs outside the server lock.
func (t *TenantTable) reserve(id string) (*tenant, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tn, ok := t.tenants[id]
	if !ok {
		tn = &tenant{id: id, quota: t.quotaFor(id)}
		t.tenants[id] = tn
	}
	if q := tn.quota; !q.unlimited() {
		if q.MaxSessions > 0 && tn.sessions+tn.pending >= q.MaxSessions {
			t.rejected.Add(1)
			return nil, fmt.Sprintf("tenant %q over session quota (%d)", id, q.MaxSessions)
		}
		if q.MaxQueuedFrames > 0 && int(tn.depth.Load()) >= q.MaxQueuedFrames {
			t.rejected.Add(1)
			return nil, fmt.Sprintf("tenant %q over queued-frame quota (%d)", id, q.MaxQueuedFrames)
		}
	}
	tn.pending++
	return tn, ""
}

// commit converts a reservation into an admitted session.
func (t *TenantTable) commit(tn *tenant) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tn.pending--
	tn.sessions++
}

// release returns a reservation (admitted=false) or an admitted session
// (admitted=true) to the table, garbage-collecting idle tenants so a churn
// of one-shot tenant ids cannot grow the table without bound.
func (t *TenantTable) release(tn *tenant, admitted bool) {
	if tn == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if admitted {
		tn.sessions--
	} else {
		tn.pending--
	}
	if tn.sessions == 0 && tn.pending == 0 && tn.depth.Load() == 0 {
		if cur, ok := t.tenants[tn.id]; ok && cur == tn {
			delete(t.tenants, tn.id)
		}
	}
}
