// Package nsync is the public facade of the NSYNC side-channel intrusion
// detection framework for additive manufacturing, a reproduction of
// "A Practical Side-Channel Based Intrusion Detection System for Additive
// Manufacturing Systems" (ICDCS 2021).
//
// The framework compares an observed side-channel signal against a
// reference recording of a known-benign print. A dynamic synchronizer
// (Dynamic Window Matching, or DTW for comparison) tracks the horizontal
// displacement between the signals despite time noise; a comparator derives
// vertical distances; and a discriminator with One-Class-Classification
// thresholds raises intrusion alerts.
//
// Quickstart:
//
//	ref := nsync.NewSignal(rate, channels, samples) // reference recording
//	det, err := nsync.NewDWMDetector(ref, nsync.DefaultDWMParams(4, 2), 0.3)
//	...
//	err = det.Train(benignRuns)   // benign recordings only (one-class)
//	verdict, err := det.Classify(observed)
//	if verdict.Intrusion { ... }
//
// For streaming (mid-print) detection, see NewMonitor. The full evaluation
// harness — printer simulator, sensor models, the five prior IDSs, and the
// benchmark suite that regenerates the paper's tables and figures — lives
// under internal/ and is driven by cmd/repro and the root bench suite.
package nsync

import (
	"nsync/internal/core"
	"nsync/internal/dwm"
	"nsync/internal/fault"
	"nsync/internal/sigproc"
)

// Signal is a uniformly sampled multi-channel time series (see
// internal/sigproc).
type Signal = sigproc.Signal

// NewSignal allocates a zeroed signal with the given sampling rate, channel
// count, and length.
func NewSignal(rate float64, channels, samples int) *Signal {
	return sigproc.New(rate, channels, samples)
}

// FromSamples wraps a sample slice as a single-channel signal.
func FromSamples(rate float64, samples []float64) *Signal {
	return sigproc.FromSamples(rate, samples)
}

// DWMParams holds the five Dynamic Window Matching parameters (t_win,
// t_hop, t_ext, t_sigma, eta), in seconds.
type DWMParams = dwm.Params

// DefaultDWMParams derives DWM parameters from a window size and extended
// window size using the paper's default ratios (t_hop = t_win/2,
// t_sigma = t_ext/2, eta = 0.1).
func DefaultDWMParams(tWin, tExt float64) DWMParams {
	return dwm.DefaultParams(tWin, tExt)
}

// Detector is a trained NSYNC intrusion detector bound to one reference
// signal.
type Detector = core.Detector

// Verdict is a detector's decision for one observed process.
type Verdict = core.Verdict

// Thresholds are the learned OCC critical values (c_c, h_c, v_c).
type Thresholds = core.Thresholds

// Monitor is the streaming (real-time) NSYNC detector.
type Monitor = core.Monitor

// Alert is an intrusion alert raised by a streaming Monitor.
type Alert = core.Alert

// NewDWMDetector builds an NSYNC detector that synchronizes with Dynamic
// Window Matching — the paper's proposed configuration. occMargin is the
// one-class-classification margin r (the paper uses 0.3 with 50 training
// runs; use a larger margin with fewer runs).
func NewDWMDetector(reference *Signal, params DWMParams, occMargin float64) (*Detector, error) {
	return core.NewDetector(reference, core.Config{
		Sync: &core.DWMSynchronizer{Params: params},
		OCC:  core.OCCConfig{R: occMargin},
	})
}

// NewDTWDetector builds an NSYNC detector that synchronizes with FastDTW,
// the prior-art synchronizer the paper compares against. Only practical on
// low-rate signals such as spectrograms.
func NewDTWDetector(reference *Signal, radius int, occMargin float64) (*Detector, error) {
	return core.NewDetector(reference, core.Config{
		Sync: &core.DTWSynchronizer{Radius: radius},
		OCC:  core.OCCConfig{R: occMargin},
	})
}

// NewMonitor builds a streaming monitor that consumes observed samples as a
// print progresses and raises alerts mid-print. Thresholds come from a
// previously trained Detector.
func NewMonitor(reference *Signal, params DWMParams, thresholds Thresholds) (*Monitor, error) {
	return core.NewMonitor(reference, params, thresholds)
}

// Graceful degradation under sensor faults: a FusedDetector (offline) or
// FusedMonitor (streaming) runs one NSYNC detector per side channel,
// quarantines channels whose signals fail online health checks (flat,
// saturated, non-finite, or statistically implausible), and fuses the
// surviving channels' verdicts by k-of-n voting. A dying accelerometer
// lowers coverage instead of producing a stuck alarm or a silent miss.

// FusedDetector is the multi-channel, health-gated NSYNC detector.
type FusedDetector = core.FusedDetector

// FusedChannel configures one side channel of a fused detector.
type FusedChannel = core.FusedChannel

// FusedConfig tunes verdict fusion (the voting quorum K).
type FusedConfig = core.FusedConfig

// FusedVerdict is the fused k-of-n decision with per-channel detail.
type FusedVerdict = core.FusedVerdict

// ChannelVerdict is one channel's health-gated contribution to a fusion.
type ChannelVerdict = core.ChannelVerdict

// HealthConfig tunes the per-channel signal health checks.
type HealthConfig = core.HealthConfig

// FusedMonitor is the streaming variant of FusedDetector.
type FusedMonitor = core.FusedMonitor

// FusedMonitorChannel configures one channel of a FusedMonitor.
type FusedMonitorChannel = core.FusedMonitorChannel

// FusedAlert is an intrusion alert raised by a FusedMonitor.
type FusedAlert = core.FusedAlert

// NewFusedDetector builds an untrained fused detector over the given
// channels.
func NewFusedDetector(channels []FusedChannel, cfg FusedConfig) (*FusedDetector, error) {
	return core.NewFusedDetector(channels, cfg)
}

// NewFusedMonitor builds a streaming fused monitor over the given channels.
func NewFusedMonitor(channels []FusedMonitorChannel, cfg FusedConfig) (*FusedMonitor, error) {
	return core.NewFusedMonitor(channels, cfg)
}

// FaultSpec describes one injected sensor fault (kind, severity in [0, 1],
// onset in seconds); FaultKind enumerates the supported fault types. See
// internal/fault for the fault model.
type (
	FaultSpec = fault.Spec
	FaultKind = fault.Kind
)

// The supported sensor-fault kinds.
const (
	FaultDropout    = fault.Dropout
	FaultStuckAt    = fault.StuckAt
	FaultSaturation = fault.Saturation
	FaultSpikeBurst = fault.SpikeBurst
	FaultGainStep   = fault.GainStep
	FaultClockDrift = fault.ClockDrift
)

// FaultInjector deterministically applies a sequence of fault specs to
// signals.
type FaultInjector = fault.Injector

// NewFaultInjector builds a seeded fault injector; identical seeds and
// specs reproduce identical corrupted signals.
func NewFaultInjector(seed int64, specs ...FaultSpec) (*FaultInjector, error) {
	return fault.NewInjector(seed, specs...)
}
