package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

func sampleFrames() []*Frame {
	return []*Frame{
		{Type: FrameHello, SessionID: "print-42", Priority: 7, Channels: []ChannelSpec{
			{Name: "ACC", Lanes: 6, Rate: 400},
			{Name: "MAG", Lanes: 3, Rate: 10},
			{Name: "AUD", Lanes: 2, Rate: 4800},
		}},
		{Type: FrameHello, SessionID: "fleet-17", Priority: 3,
			Channels: []ChannelSpec{{Name: "ACC", Lanes: 6, Rate: 400}},
			Tenant:   "plant-berlin", Model: "a1b2c3d4e5f6"},
		{Type: FrameHelloAck, Committed: []uint64{0, 1200, 1 << 40}},
		{Type: FrameHelloAck},
		{Type: FrameData, Channel: 2, Seq: 12345, Values: []float64{1.5, -2.25, 0, 3e300}},
		{Type: FrameData, Channel: 0, Seq: 0, Values: []float64{}},
		{Type: FrameEOS, Channel: 1, Seq: 99999},
		{Type: FrameFinish},
		{Type: FrameVerdict, Verdict: &Verdict{
			Intrusion: true, Reason: "finished",
			Alerts:   []VerdictAlert{{Time: 12.5, Votes: 2, Healthy: 3, Needed: 2}},
			Channels: []VerdictChannel{{Name: "ACC", Quarantined: true, Health: "flat"}, {Name: "MAG", Voting: true, Health: "ok"}},
		}},
		{Type: FrameVerdict, Verdict: &Verdict{Reason: "drained"}},
		{Type: FrameError, Message: "server overloaded; session shed"},
		{Type: FrameHello, SessionID: "resume-9", Priority: 1,
			Channels: []ChannelSpec{{Name: "ACC", Lanes: 6, Rate: 400}},
			Flags:    HelloFlagExpectResume},
		{Type: FrameRedirect, Addr: "10.0.0.7:7071", Peer: 2},
		{Type: FrameHandoff, SessionID: "fleet-0007", Priority: 9,
			Channels: []ChannelSpec{{Name: "ACC", Lanes: 6, Rate: 400}, {Name: "AUD", Lanes: 2, Rate: 4800}},
			Tenant:   "plant-berlin", Model: "a1b2c3d4e5f6",
			Committed: []uint64{400, 9600}, Blob: []byte{1, 2, 3, 4}},
		{Type: FrameHandoff, SessionID: "stateless", Priority: 0,
			Channels:  []ChannelSpec{{Name: "MAG", Lanes: 3, Rate: 10}},
			Committed: []uint64{0}},
		{Type: FrameHandoffAck, SessionID: "fleet-0007"},
		{Type: FrameHandoffAck, SessionID: "fleet-0008", Message: "peer is draining"},
		{Type: FrameModelFetch, Model: "a1b2c3d4e5f6"},
		{Type: FrameModelData, Model: "a1b2c3d4e5f6", Seq: 1 << 19, Blob: bytes.Repeat([]byte{0xAB}, 32)},
		{Type: FrameModelData, Model: "a1b2c3d4e5f6", Seq: 0, Last: true},
		{Type: FramePing, Peer: 1, Usage: []TenantUsage{{Tenant: "plant-0", Sessions: 3}, {Tenant: "plant-1", Sessions: 1}}},
		{Type: FramePong, Peer: 0},
		{Type: FramePing, Peer: 2, Flags: PingFlagDraining},
		{Type: FramePong, Peer: 1, Usage: []TenantUsage{{Tenant: "plant-2", Sessions: 7}}, Flags: PingFlagDraining},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		buf, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("%v: encode: %v", f.Type, err)
		}
		got, err := ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Type, err)
		}
		// Empty slices decode as their canonical form; normalize before
		// comparing.
		norm := *f
		if len(norm.Values) == 0 {
			norm.Values = got.Values
		}
		if !reflect.DeepEqual(got, &norm) {
			t.Errorf("%v: round trip:\n got %+v\nwant %+v", f.Type, got, &norm)
		}
	}
}

// TestHelloBackwardCompatible decodes a pre-fleet Hello — the payload ends
// at the channel list, with no tenant or model fields — and a tenant-only
// Hello. Both layouts must keep decoding after the fleet extension.
func TestHelloBackwardCompatible(t *testing.T) {
	legacy := mustAppendRaw(t, func(w *frameWriter) {
		w.u8(Version)
		w.u8(uint8(FrameHello))
		w.str8("old-client")
		w.u8(5) // priority
		w.u8(1) // one channel
		w.str8("ACC")
		w.u8(6)
		w.f64(400)
	})
	f, err := ReadFrame(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy hello: %v", err)
	}
	if f.SessionID != "old-client" || f.Tenant != "" || f.Model != "" {
		t.Fatalf("legacy hello decoded as %+v", f)
	}

	tenantOnly := mustAppendRaw(t, func(w *frameWriter) {
		w.u8(Version)
		w.u8(uint8(FrameHello))
		w.str8("mid-client")
		w.u8(5)
		w.u8(1)
		w.str8("ACC")
		w.u8(6)
		w.f64(400)
		w.str8("plant-7") // tenant but no model
	})
	f, err = ReadFrame(bytes.NewReader(tenantOnly))
	if err != nil {
		t.Fatalf("tenant-only hello: %v", err)
	}
	if f.Tenant != "plant-7" || f.Model != "" {
		t.Fatalf("tenant-only hello decoded as %+v", f)
	}
}

// TestRedirectBackwardCompatible decodes a Redirect whose payload ends at
// the address — no trailing peer-index field. Like Hello's tenant/model
// extension, Peer is trailing-optional so a minimal redirect stays
// decodable by future versions.
func TestRedirectBackwardCompatible(t *testing.T) {
	minimal := mustAppendRaw(t, func(w *frameWriter) {
		w.u8(Version)
		w.u8(uint8(FrameRedirect))
		w.str16("10.0.0.9:7071")
	})
	f, err := ReadFrame(bytes.NewReader(minimal))
	if err != nil {
		t.Fatalf("minimal redirect: %v", err)
	}
	if f.Addr != "10.0.0.9:7071" || f.Peer != 0 {
		t.Fatalf("minimal redirect decoded as %+v", f)
	}
}

// TestHelloFlagsBackwardCompatible checks both directions of the Flags
// extension: a Hello without the trailing flags byte decodes with Flags=0,
// and a fresh Hello (Flags=0) encodes byte-identical to the pre-cluster
// layout so legacy servers keep accepting it.
func TestHelloFlagsBackwardCompatible(t *testing.T) {
	noFlags := mustAppendRaw(t, func(w *frameWriter) {
		w.u8(Version)
		w.u8(uint8(FrameHello))
		w.str8("full-client")
		w.u8(5)
		w.u8(1)
		w.str8("ACC")
		w.u8(6)
		w.f64(400)
		w.str8("plant-7")
		w.str8("a1b2c3d4e5f6")
	})
	f, err := ReadFrame(bytes.NewReader(noFlags))
	if err != nil {
		t.Fatalf("flagless hello: %v", err)
	}
	if f.Flags != 0 || f.Tenant != "plant-7" || f.Model != "a1b2c3d4e5f6" {
		t.Fatalf("flagless hello decoded as %+v", f)
	}

	fresh := &Frame{Type: FrameHello, SessionID: "full-client", Priority: 5,
		Channels: []ChannelSpec{{Name: "ACC", Lanes: 6, Rate: 400}},
		Tenant:   "plant-7", Model: "a1b2c3d4e5f6"}
	enc, err := AppendFrame(nil, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, noFlags) {
		t.Fatalf("fresh hello encoding diverged from pre-cluster layout:\n got %x\nwant %x", enc, noFlags)
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := sampleFrames()
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i := range frames {
		if _, err := ReadFrame(r); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Errorf("end of stream: got %v, want io.EOF", err)
	}
}

func TestFrameMalformed(t *testing.T) {
	valid, err := AppendFrame(nil, &Frame{Type: FrameData, Channel: 1, Seq: 10, Values: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bad version":       {0, 0, 0, 2, 99, byte(FrameFinish)},
		"unknown type":      {0, 0, 0, 2, Version, 200},
		"short payload len": {0, 0, 0, 1, Version},
		"hello no channels": mustAppendRaw(t, func(w *frameWriter) {
			w.u8(Version)
			w.u8(uint8(FrameHello))
			w.str8("id")
			w.u8(0) // priority
			w.u8(0) // zero channels
		}),
		"hello zero lanes": mustAppendRaw(t, func(w *frameWriter) {
			w.u8(Version)
			w.u8(uint8(FrameHello))
			w.str8("id")
			w.u8(0)
			w.u8(1)
			w.str8("ACC")
			w.u8(0) // zero lanes
			w.f64(100)
		}),
		"hello bad rate": mustAppendRaw(t, func(w *frameWriter) {
			w.u8(Version)
			w.u8(uint8(FrameHello))
			w.str8("id")
			w.u8(0)
			w.u8(1)
			w.str8("ACC")
			w.u8(1)
			w.f64(-5)
		}),
		"truncated data values": valid[:len(valid)-4],
		"trailing bytes":        append(append([]byte{}, valid...), 0xFF),
	}
	// Fix up the length prefixes of the hand-built cases.
	for name, b := range cases {
		switch name {
		case "truncated data values":
			nb := append([]byte{}, b...)
			binary.BigEndian.PutUint32(nb, uint32(len(nb)-4))
			cases[name] = nb
		case "trailing bytes":
			nb := append([]byte{}, b...)
			binary.BigEndian.PutUint32(nb, uint32(len(nb)-4))
			cases[name] = nb
		}
	}
	for name, b := range cases {
		_, err := ReadFrame(bytes.NewReader(b))
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
}

// mustAppendRaw hand-builds a length-prefixed frame from raw payload writes.
func mustAppendRaw(t *testing.T, build func(w *frameWriter)) []byte {
	t.Helper()
	w := &frameWriter{}
	build(w)
	out := binary.BigEndian.AppendUint32(nil, uint32(len(w.buf)))
	return append(out, w.buf...)
}

func TestFrameOversizedLengthRejected(t *testing.T) {
	hdr := binary.BigEndian.AppendUint32(nil, MaxFramePayload+1)
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrMalformed) {
		t.Errorf("oversized length: got %v, want ErrMalformed", err)
	}
}

func TestFrameTornStream(t *testing.T) {
	buf, err := AppendFrame(nil, &Frame{Type: FrameData, Channel: 0, Seq: 5, Values: []float64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-payload: a torn stream is an I/O problem, not a protocol one.
	if _, err := ReadFrame(bytes.NewReader(buf[:len(buf)/2])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("torn payload: got %v, want io.ErrUnexpectedEOF", err)
	}
	if errors.Is(err, ErrMalformed) {
		t.Error("torn payload must not classify as malformed")
	}
	// Cut mid-header.
	if _, err := ReadFrame(bytes.NewReader(buf[:2])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("torn header: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		buf, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[4:]) // seed with the payload, sans length prefix
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, byte(FrameData), 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := DecodeFrame(payload)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode back to itself.
		buf, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v\nframe: %+v", err, fr)
		}
		fr2, err := ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		// Compare via a second encoding rather than reflect.DeepEqual: the
		// fuzzer finds float payloads containing NaN, whose bit pattern the
		// codec preserves but which never compare equal as values.
		buf2, err := AppendFrame(nil, fr2)
		if err != nil {
			t.Fatalf("re-decoded frame failed to encode: %v", err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x\nframe: %+v", buf2, buf, fr)
		}
	})
}
