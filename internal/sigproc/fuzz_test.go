package sigproc

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"
	"time"
)

// header builds a .nsig header with arbitrary (possibly hostile) fields.
func header(magic string, rate float64, channels, samples uint32) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	binary.Write(&buf, binary.LittleEndian, rate)
	binary.Write(&buf, binary.LittleEndian, [2]uint32{channels, samples})
	return buf.Bytes()
}

// FuzzReadSignal throws malformed .nsig streams at the parser: truncated
// headers, corrupt lengths, and huge declared sample counts must all return
// errors — never panic, and never allocate proportionally to what the header
// merely claims.
func FuzzReadSignal(f *testing.F) {
	// A valid two-channel file.
	s := New(100, 2, 8)
	for c := range s.Data {
		for i := range s.Data[c] {
			s.Data[c][i] = float64(c + i)
		}
	}
	var valid bytes.Buffer
	if err := s.Encode(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:5])                                 // truncated header
	f.Add(valid.Bytes()[:30])                                // truncated body
	f.Add(header("BADMAGIC", 100, 1, 1))                     // wrong magic
	f.Add(header("NSYNCSIG", 100, 1<<31, 1<<31))             // huge dims
	f.Add(header("NSYNCSIG", 100, 0xFFFFFFFF, 0xFFFFFFFF))   // dims overflow int on 32-bit
	f.Add(header("NSYNCSIG", math.NaN(), 1, 1))              // NaN rate
	f.Add(header("NSYNCSIG", math.Inf(1), 1, 1))             // Inf rate
	f.Add(header("NSYNCSIG", -5, 1, 1))                      // negative rate
	f.Add(header("NSYNCSIG", 100, 3, 1<<27))                 // big declared, no data
	f.Add(append(header("NSYNCSIG", 100, 1, 2), 1, 2, 3, 4)) // short payload

	f.Fuzz(func(t *testing.T, data []byte) {
		sig, err := ReadSignal(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must be internally consistent and re-encodable.
		if verr := sig.Validate(); verr != nil {
			t.Fatalf("parsed signal fails Validate: %v", verr)
		}
		if err := sig.Encode(io.Discard); err != nil {
			t.Fatalf("parsed signal fails re-encode: %v", err)
		}
	})
}

// TestReadSignalHugeDeclaredLength pins the satellite requirement directly:
// a tiny file whose header declares ~2^28 samples per channel (2 GiB of
// float64s) must fail fast with a bounded allocation instead of OOMing.
func TestReadSignalHugeDeclaredLength(t *testing.T) {
	hdr := header("NSYNCSIG", 100, 4, 1<<26) // 4 channels x 2^26 = 2^28 total: rejected upfront
	if _, err := ReadSignal(bytes.NewReader(hdr)); err == nil {
		t.Fatal("implausible total size: want error")
	}

	// A merely-large declaration that passes the plausibility gate must
	// still fail quickly on the missing data, not allocate it all upfront.
	hdr = header("NSYNCSIG", 100, 1, 1<<26)
	start := time.Now()
	if _, err := ReadSignal(bytes.NewReader(hdr)); err == nil {
		t.Fatal("truncated 512 MiB declaration: want error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("rejecting a truncated huge file took %v", d)
	}
}

// TestReadSignalRejectsBadRates covers the rate-validation gate.
func TestReadSignalRejectsBadRates(t *testing.T) {
	for _, rate := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -100} {
		raw := append(header("NSYNCSIG", rate, 1, 1), make([]byte, 8)...)
		if _, err := ReadSignal(bytes.NewReader(raw)); err == nil {
			t.Errorf("rate %v: want error", rate)
		}
	}
}
