package ingest

import (
	"context"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"nsync/internal/sigproc"
)

// TestCrashRecoveryResumesSession is the end-to-end crash-recovery contract,
// in process: a session streams against a journaling server, the journal's
// write stream dies mid-print (the kill -9 stand-in), a second server boots
// from the journal directory, recovers the session as detached, and the
// client resumes through the ordinary resume path. The final verdict must
// match a never-interrupted run of the same signals, alert for alert.
func TestCrashRecoveryResumesSession(t *testing.T) {
	fx := fixture(t)
	pool := NewSharedPool(nil)
	version, err := pool.Register(fixtureModel(t, 1))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	j1, rec := openTestJournal(t, dir, JournalConfig{})
	if len(rec) != 0 {
		t.Fatalf("fresh journal recovered %d sessions", len(rec))
	}

	cfg := Config{
		Factory: pool, Journal: j1, SnapshotEveryFrames: 4,
		ReadTimeout: 20 * time.Second, Retention: time.Minute, Logf: t.Logf,
	}
	srv1, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serve1 := make(chan error, 1)
	go func() { serve1 <- srv1.Serve(l1) }()

	rng := rand.New(rand.NewSource(55))
	runs := []*sigproc.Signal{perturbed(rng, fx.refs[0]), attacked(rng, fx.refs[1])}
	if !fx.inProcessVerdict(t, 1, runs) {
		t.Fatal("fixture: malicious run not detected in process")
	}

	// Stream the first 800 of 2000 samples, then crash.
	const frameSamples = 50
	c, err := Dial(l1.Addr().String(), fx.hello("crashy", 5), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < 800; start += frameSamples {
		for ch, sig := range runs {
			lanes := fx.specs[ch].Lanes
			values := make([]float64, 0, frameSamples*lanes)
			for i := start; i < start+frameSamples; i++ {
				for l := 0; l < lanes; l++ {
					values = append(values, sig.Data[l][i])
				}
			}
			if err := c.SendData(ch, uint64(start), values); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, 5*time.Second, func() bool { return j1.Snapshots() > 0 })

	// The crash instant: the journal's write stream dies with frames still
	// in flight. Everything after this line (the client teardown, the old
	// server's drain, its Finish records) must leave no trace on disk.
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	c.Close() //nolint:errcheck // simulated crash teardown
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serve1; err != nil {
		t.Fatal(err)
	}

	// Boot a second server from the journal directory.
	j2, rec2 := openTestJournal(t, dir, JournalConfig{})
	defer j2.Close() //nolint:errcheck // test teardown
	if len(rec2) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(rec2))
	}
	rs := rec2[0]
	if rs.SessionID != "crashy" || rs.Tenant != "" || rs.Model != version {
		t.Fatalf("recovered identity %+v, want crashy pinned to %s", rs, version)
	}
	if !reflect.DeepEqual(rs.Channels, fx.specs) {
		t.Fatalf("recovered channel layout %+v, want %+v", rs.Channels, fx.specs)
	}
	if len(rs.State) == 0 {
		t.Fatal("no monitor state journaled")
	}
	if rs.Committed[0] == 0 && rs.Committed[1] == 0 {
		t.Fatal("durable snapshot has a zero resume point")
	}

	cfg2 := cfg
	cfg2.Journal = j2
	srv2, err := NewServer(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if n := srv2.Recover(rec2, pool); n != 1 {
		t.Fatalf("Recover() = %d, want 1", n)
	}
	if got := srv2.SessionCount(); got != 1 {
		t.Fatalf("SessionCount() = %d after recovery, want 1", got)
	}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serve2 := make(chan error, 1)
	go func() { serve2 <- srv2.Serve(l2) }()

	// The reconnect's HelloAck must report the rolled-back resume point —
	// the client learns where to pick up through the existing protocol.
	rc, err := Dial(l2.Addr().String(), fx.hello("crashy", 5), 5*time.Second)
	if err != nil {
		t.Fatalf("reconnect after recovery: %v", err)
	}
	if !reflect.DeepEqual(rc.Committed, rs.Committed) {
		t.Fatalf("HelloAck committed %v, want journaled %v", rc.Committed, rs.Committed)
	}
	rc.Close() //nolint:errcheck // probing connection only

	// Resume for real: a full replay under the same id re-sends everything;
	// the server skips what it already committed and absorbs the overlap.
	v, err := Replay(l2.Addr().String(), fx.hello("crashy", 5), runs, ReplayOptions{FrameSamples: frameSamples})
	if err != nil {
		t.Fatalf("resumed replay: %v", err)
	}
	// Ground truth through the same wire: a clean, never-crashed session.
	vClean, err := Replay(l2.Addr().String(), fx.hello("clean", 5), runs, ReplayOptions{FrameSamples: frameSamples})
	if err != nil {
		t.Fatalf("clean replay: %v", err)
	}
	if !v.Intrusion || !vClean.Intrusion {
		t.Fatalf("intrusion verdicts: recovered %v, clean %v, want both true", v.Intrusion, vClean.Intrusion)
	}
	if !reflect.DeepEqual(v.Alerts, vClean.Alerts) {
		t.Fatalf("alerts diverge across the crash:\nrecovered: %+v\nclean:     %+v", v.Alerts, vClean.Alerts)
	}
	if !reflect.DeepEqual(v.Channels, vClean.Channels) {
		t.Fatalf("channel states diverge across the crash:\nrecovered: %+v\nclean:     %+v", v.Channels, vClean.Channels)
	}

	// Both sessions finished: the journal must have released them, so a
	// third boot recovers nothing.
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serve2; err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, rec3 := openTestJournal(t, dir, JournalConfig{})
	defer j3.Close() //nolint:errcheck // test teardown
	if len(rec3) != 0 {
		t.Fatalf("finished sessions survived in the journal: %+v", rec3)
	}
}

// TestRecoverSkipsUnrestorableSessions: a journaled session whose model no
// longer resolves must not block boot — it is skipped, finished in the
// journal, and everything else recovers.
func TestRecoverSkipsUnrestorableSessions(t *testing.T) {
	fx := fixture(t)
	pool := NewSharedPool(nil)
	version, err := pool.Register(fixtureModel(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir, JournalConfig{})
	j.Admit("good", "", version, 1, fx.specs)
	j.Admit("gone-model", "", "feedfacefeed", 1, fx.specs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec := openTestJournal(t, dir, JournalConfig{})
	defer j2.Close() //nolint:errcheck // test teardown
	if len(rec) != 2 {
		t.Fatalf("recovered %d journaled sessions, want 2", len(rec))
	}
	srv, err := NewServer(Config{Factory: pool, Journal: j2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if n := srv.Recover(rec, pool); n != 1 {
		t.Fatalf("Recover() = %d, want 1 (bad model skipped)", n)
	}
	if got := srv.SessionCount(); got != 1 {
		t.Fatalf("SessionCount() = %d, want 1", got)
	}
	// The skipped session must be finished in the journal, not recovered
	// again forever.
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, rec3 := openTestJournal(t, dir, JournalConfig{})
	defer j3.Close() //nolint:errcheck // test teardown
	for _, rs := range rec3 {
		if rs.SessionID == "gone-model" {
			t.Fatal("unrestorable session still journaled after skip")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRestoreFailureReleasesReservation is the regression pin for
// the recovery rollback path: a journaled session whose restore fails (its
// model no longer resolves) must give back its tenant reservation
// immediately — not hold the slot until retention expiry — so a live
// admission for the same tenant succeeds right after boot.
func TestRecoverRestoreFailureReleasesReservation(t *testing.T) {
	fx := fixture(t)
	pool := NewSharedPool(nil)
	tenants := NewTenantTable(TenantQuota{MaxSessions: 1})
	srv, err := NewServer(Config{
		Factory: pool, Tenants: tenants, Logf: t.Logf,
		// A long retention makes the failure mode visible: a leaked
		// reservation would block the tenant for an hour, not a blink.
		Retention: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := RecoveredSession{
		SessionID: "victim", Tenant: "plant-1", Model: "feedfacefeed",
		Priority: 3, Channels: fx.specs, Committed: []uint64{100, 100},
	}
	if n := srv.Recover([]RecoveredSession{rs}, pool); n != 0 {
		t.Fatalf("Recover() = %d, want 0 (model cannot restore)", n)
	}
	// The tenant's single quota slot must be free again, immediately.
	tn, reject := tenants.reserve("plant-1")
	if reject != "" {
		t.Fatalf("reservation leaked by failed restore: %s", reject)
	}
	tenants.release(tn, false)
	if got := srv.SessionCount(); got != 0 {
		t.Fatalf("SessionCount() = %d after failed recovery, want 0", got)
	}
}
