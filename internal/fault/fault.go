// Package fault is a composable, seeded sensor-fault injector: it corrupts
// captured side-channel signals with the failure modes a real acquisition
// chain exhibits, so the robustness of a detector can be measured under
// controlled degradation. The benign DAQ effects the paper names (gain
// drift, frame drops) live in internal/sensor; this package models the
// *faulty* end of the spectrum — a dying accelerometer, a clipping ADC, a
// loose connector — each parameterized by a severity in [0, 1] and an onset
// time, so a robustness experiment can sweep fault type x severity.
//
// Faults are described by plain-data Specs and applied by an Injector,
// which owns the seed: the same (seed, specs, signal) always produces the
// same corrupted signal, at any call order, so robustness tables are
// reproducible.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"nsync/internal/sigproc"
)

// Kind identifies one failure mode of the acquisition chain.
type Kind int

// The supported failure modes.
const (
	// Dropout models a loose connector or DAQ gap: samples in a window
	// after onset are replaced with zeros. Severity scales the gap length
	// (1.0 wipes everything from onset to the end).
	Dropout Kind = iota + 1
	// StuckAt models a dead sensor lane: from onset on, affected lanes
	// repeat the value they held at onset. Severity scales how many lanes
	// die (1.0 kills the whole channel).
	StuckAt
	// Saturation models an ADC driven past its rails: from onset on,
	// samples clip to a level below the signal's own amplitude. Severity
	// lowers the rail (1.0 clips at ~5% of the pre-onset amplitude).
	Saturation
	// SpikeBurst models EMI or a failing cable shield: random impulses of
	// ~10 sigma amplitude from onset to the end. Severity scales the spike
	// rate.
	SpikeBurst
	// GainStep models an amplifier stage failing or an auto-gain jump: the
	// signal is multiplied by a step factor from onset on. Severity scales
	// the factor (1.0 quadruples the gain).
	GainStep
	// ClockDrift models a sample clock running fast: from onset on the
	// waveform is progressively time-compressed. Severity scales the rate
	// error (1.0 is a 2% fast clock).
	ClockDrift
)

// AllKinds lists every failure mode, in declaration order.
var AllKinds = []Kind{Dropout, StuckAt, Saturation, SpikeBurst, GainStep, ClockDrift}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Dropout:
		return "dropout"
	case StuckAt:
		return "stuckat"
	case Saturation:
		return "saturation"
	case SpikeBurst:
		return "spikes"
	case GainStep:
		return "gainstep"
	case ClockDrift:
		return "clockdrift"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one fault: what fails, how badly, and when. Specs are
// plain data so they can sit in tables, flags, and experiment grids.
type Spec struct {
	// Kind is the failure mode.
	Kind Kind
	// Severity in [0, 1] scales the kind-specific damage (see the Kind
	// docs). Severity 0 is (near-)identity for every kind.
	Severity float64
	// Onset is when the fault begins, in seconds into the signal. Onsets
	// past the end of the signal make the fault a no-op.
	Onset float64
}

// Validate reports malformed specs.
func (sp Spec) Validate() error {
	switch sp.Kind {
	case Dropout, StuckAt, Saturation, SpikeBurst, GainStep, ClockDrift:
	default:
		return fmt.Errorf("fault: unknown kind %v", sp.Kind)
	}
	if sp.Severity < 0 || sp.Severity > 1 || math.IsNaN(sp.Severity) {
		return fmt.Errorf("fault: severity %v outside [0, 1]", sp.Severity)
	}
	if sp.Onset < 0 || math.IsNaN(sp.Onset) {
		return fmt.Errorf("fault: negative onset %v", sp.Onset)
	}
	return nil
}

// String renders the spec compactly ("stuckat@12.0s/1.00").
func (sp Spec) String() string {
	return fmt.Sprintf("%v@%.1fs/%.2f", sp.Kind, sp.Onset, sp.Severity)
}

// Injector applies a sequence of fault specs to signals, deterministically:
// the per-spec randomness (spike positions, signs) derives from the
// injector seed and the spec index only.
type Injector struct {
	seed  int64
	specs []Spec
}

// NewInjector builds an injector for the given specs. The seed drives every
// random choice the faults make; the same seed reproduces the same damage.
func NewInjector(seed int64, specs ...Spec) (*Injector, error) {
	for i, sp := range specs {
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("fault: spec %d: %w", i, err)
		}
	}
	return &Injector{seed: seed, specs: append([]Spec(nil), specs...)}, nil
}

// Specs returns a copy of the injector's fault specs.
func (in *Injector) Specs() []Spec { return append([]Spec(nil), in.specs...) }

// Apply returns a corrupted copy of s with every spec applied in order. The
// input signal is never modified. An empty spec list returns a plain clone.
func (in *Injector) Apply(s *sigproc.Signal) (*sigproc.Signal, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	out := s.Clone()
	if err := in.ApplyInPlace(out); err != nil {
		return nil, err
	}
	return out, nil
}

// ApplyInPlace corrupts s in place with every spec applied in order, with
// the same determinism as Apply. It is the no-copy path for callers that
// already own their signal — the sensor drift injector composes faults onto
// an already-cloned drifted signal this way.
func (in *Injector) ApplyInPlace(s *sigproc.Signal) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("fault: %w", err)
	}
	for i, sp := range in.specs {
		// One sub-stream per spec index: inserting or removing a spec does
		// not perturb the randomness of the others.
		rng := rand.New(rand.NewSource(int64(uint64(in.seed) ^ uint64(i+1)*0x9E3779B97F4A7C15)))
		if err := apply(s, sp, rng); err != nil {
			return fmt.Errorf("fault: spec %d (%v): %w", i, sp, err)
		}
	}
	return nil
}

// apply mutates sig in place according to sp.
func apply(sig *sigproc.Signal, sp Spec, rng *rand.Rand) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	n := sig.Len()
	if n == 0 || sig.Rate <= 0 {
		return nil
	}
	onset := int(sp.Onset * sig.Rate)
	if onset >= n {
		return nil
	}
	if onset < 0 {
		onset = 0
	}
	switch sp.Kind {
	case Dropout:
		applyDropout(sig, onset, sp.Severity)
	case StuckAt:
		applyStuckAt(sig, onset, sp.Severity)
	case Saturation:
		applySaturation(sig, onset, sp.Severity)
	case SpikeBurst:
		applySpikeBurst(sig, onset, sp.Severity, rng)
	case GainStep:
		applyGainStep(sig, onset, sp.Severity)
	case ClockDrift:
		applyClockDrift(sig, onset, sp.Severity)
	}
	return nil
}

// applyDropout zeroes a gap starting at onset; the gap spans severity of
// the remaining samples.
func applyDropout(sig *sigproc.Signal, onset int, severity float64) {
	n := sig.Len()
	gap := int(math.Round(severity * float64(n-onset)))
	for _, ch := range sig.Data {
		for i := onset; i < onset+gap && i < n; i++ {
			ch[i] = 0
		}
	}
}

// applyStuckAt freezes the first max(1, round(severity*lanes)) lanes at
// their onset value. Lanes die lowest-index first, mirroring how a partial
// IMU failure takes out one sub-sensor at a time.
func applyStuckAt(sig *sigproc.Signal, onset int, severity float64) {
	lanes := int(math.Round(severity * float64(sig.Channels())))
	if lanes < 1 {
		lanes = 1
	}
	if lanes > sig.Channels() {
		lanes = sig.Channels()
	}
	for c := 0; c < lanes; c++ {
		ch := sig.Data[c]
		held := ch[onset]
		for i := onset; i < len(ch); i++ {
			ch[i] = held
		}
	}
}

// applySaturation clips every lane to a rail derived from its own pre-onset
// amplitude: rail = maxAbs * (1 - 0.95*severity), so severity 1 clips at 5%
// of the healthy amplitude.
func applySaturation(sig *sigproc.Signal, onset int, severity float64) {
	if severity == 0 {
		return
	}
	for _, ch := range sig.Data {
		maxAbs := 0.0
		for i := 0; i < onset; i++ {
			if a := math.Abs(ch[i]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			// No pre-onset reference (onset 0 or a silent lead-in): use the
			// whole lane so the rail is still proportional to the signal.
			for _, v := range ch {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
		}
		rail := maxAbs * (1 - 0.95*severity)
		for i := onset; i < len(ch); i++ {
			if ch[i] > rail {
				ch[i] = rail
			} else if ch[i] < -rail {
				ch[i] = -rail
			}
		}
	}
}

// applySpikeBurst adds impulses of ~10 sigma (per-lane pre-onset std) at a
// rate of severity*20 spikes per second from onset to the end.
func applySpikeBurst(sig *sigproc.Signal, onset int, severity float64, rng *rand.Rand) {
	n := sig.Len()
	span := n - onset
	spikes := int(math.Round(severity * 20 * float64(span) / sig.Rate))
	if spikes == 0 {
		return
	}
	stds := make([]float64, sig.Channels())
	for c, ch := range sig.Data {
		// Amplitude reference: the pre-onset samples, or the first 256 when
		// the fault starts (nearly) at the beginning.
		stds[c] = laneStd(ch[:max(onset, min(n, 256))])
		if stds[c] == 0 {
			stds[c] = 1
		}
	}
	for k := 0; k < spikes; k++ {
		i := onset + rng.Intn(span)
		sign := 1.0
		if rng.Intn(2) == 0 {
			sign = -1
		}
		for c, ch := range sig.Data {
			ch[i] += sign * 10 * stds[c]
		}
	}
}

// applyGainStep multiplies every lane by 1 + 3*severity from onset on.
func applyGainStep(sig *sigproc.Signal, onset int, severity float64) {
	factor := 1 + 3*severity
	for _, ch := range sig.Data {
		for i := onset; i < len(ch); i++ {
			ch[i] *= factor
		}
	}
}

// applyClockDrift resamples everything after onset as if the sample clock
// ran fast by severity*2%: output sample i reads input position
// onset + (i-onset)*(1+drift), clamped at the end (the tail repeats the
// final sample, like a DAQ starved of data).
func applyClockDrift(sig *sigproc.Signal, onset int, severity float64) {
	drift := severity * 0.02
	if drift == 0 {
		return
	}
	n := sig.Len()
	for _, ch := range sig.Data {
		orig := append([]float64(nil), ch[onset:]...)
		m := len(orig)
		for i := onset; i < n; i++ {
			pos := float64(i-onset) * (1 + drift)
			j := int(pos)
			if j >= m-1 {
				ch[i] = orig[m-1]
				continue
			}
			frac := pos - float64(j)
			ch[i] = orig[j]*(1-frac) + orig[j+1]*frac
		}
	}
}

// laneStd is the population standard deviation of v (0 for len < 2).
func laneStd(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	m := sum / float64(len(v))
	var ss float64
	for _, x := range v {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(v)))
}
