package fingerprint

import (
	"math"
	"math/rand"
	"testing"

	"nsync/internal/sigproc"
)

// toneSequence builds a signal that steps through a sequence of tones, one
// per 0.5 s — a crude stand-in for a printer's acoustic signature.
func toneSequence(rate float64, freqs []float64, noise float64, rng *rand.Rand) *sigproc.Signal {
	per := int(rate * 0.5)
	s := sigproc.New(rate, 1, per*len(freqs))
	for k, f := range freqs {
		for i := 0; i < per; i++ {
			t := float64(k*per+i) / rate
			v := math.Sin(2 * math.Pi * f * t)
			if noise > 0 {
				v += noise * rng.NormFloat64()
			}
			s.Data[0][k*per+i] = v
		}
	}
	return s
}

var seq1 = []float64{100, 250, 80, 300, 150, 220, 90, 180, 260, 120}
var seq2 = []float64{310, 70, 190, 240, 110, 280, 160, 60, 210, 130}

func TestExtractProducesLandmarks(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	s := toneSequence(1000, seq1, 0.05, rng)
	fp, err := Extract(s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Landmarks) < 20 {
		t.Errorf("landmarks = %d, want a rich constellation", len(fp.Landmarks))
	}
	if fp.Frames == 0 {
		t.Error("Frames = 0")
	}
}

func TestMatchScoreSameVsDifferent(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	cfg := DefaultConfig()
	a1 := toneSequence(1000, seq1, 0.1, rng)
	a2 := toneSequence(1000, seq1, 0.1, rng) // same tones, fresh noise
	b := toneSequence(1000, seq2, 0.1, rng)  // different tones
	fa1, err := Extract(a1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fa2, err := Extract(a2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Extract(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := MatchScore(fa1, fa2)
	diff := MatchScore(fa1, fb)
	if same < 0.3 {
		t.Errorf("same-sequence score = %v, want > 0.3", same)
	}
	if diff > same/2 {
		t.Errorf("different-sequence score %v too close to same-sequence %v", diff, same)
	}
}

func TestMatchScoreSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	s := toneSequence(1000, seq1, 0, rng)
	fp, err := Extract(s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := MatchScore(fp, fp); got < 0.99 {
		t.Errorf("self match = %v, want ~1", got)
	}
}

func TestMatchScoreEmpty(t *testing.T) {
	if MatchScore(&Fingerprint{}, &Fingerprint{}) != 0 {
		t.Error("empty fingerprints should score 0")
	}
}

func TestBestOffsetFindsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	cfg := DefaultConfig()
	full := toneSequence(1000, append(append([]float64{}, seq1...), seq2...), 0.02, rng)
	fpFull, err := Extract(full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Query = the second half (seq2 part), which starts 5 s in.
	half := full.Slice(full.Len()/2, full.Len())
	fpHalf, err := Extract(half, cfg)
	if err != nil {
		t.Fatal(err)
	}
	offset, votes := BestOffset(fpHalf, fpFull)
	if votes == 0 {
		t.Fatal("no matching landmarks")
	}
	// 5 s at 20 frames/s = 100 frames.
	if offset < 90 || offset > 110 {
		t.Errorf("offset = %d frames, want ~100", offset)
	}
}

func TestExtractMultiChannelAverages(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	mono := toneSequence(1000, seq1, 0, rng)
	stereo := sigproc.New(1000, 2, mono.Len())
	copy(stereo.Data[0], mono.Data[0])
	copy(stereo.Data[1], mono.Data[0])
	f1, err := Extract(mono, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Extract(stereo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := MatchScore(f1, f2); got < 0.99 {
		t.Errorf("stereo duplicate should match mono: %v", got)
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(&sigproc.Signal{Rate: 100}, DefaultConfig()); err == nil {
		t.Error("empty signal: want error")
	}
	cfg := DefaultConfig()
	cfg.STFT.DeltaF = 0
	s := sigproc.New(1000, 1, 100)
	if _, err := Extract(s, cfg); err == nil {
		t.Error("bad STFT config: want error")
	}
}
