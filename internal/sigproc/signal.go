// Package sigproc provides the multi-channel signal representation and the
// basic signal-processing primitives used throughout the NSYNC framework:
// similarity functions, distance metrics, window functions, filtering, and
// resampling.
//
// A Signal follows the notation of Section V-A of the paper: x[n, c] is the
// nth sample of the cth channel, n = 0..N-1, c = 0..C-1, sampled at Rate Hz.
package sigproc

import (
	"errors"
	"fmt"
	"math"
)

// Signal is a finite, uniformly sampled, multi-channel time series.
//
// Data is channel-major: Data[c][n] is sample n of channel c. All channels
// must have the same length. The zero value is an empty signal.
type Signal struct {
	// Rate is the sampling frequency in Hz.
	Rate float64
	// Data holds one slice per channel; all slices share a common length.
	Data [][]float64
}

// New allocates a zeroed signal with the given number of channels and
// samples. A single backing array is used for cache friendliness.
func New(rate float64, channels, samples int) *Signal {
	if channels < 0 || samples < 0 {
		panic("sigproc: negative dimensions")
	}
	backing := make([]float64, channels*samples)
	data := make([][]float64, channels)
	for c := range data {
		data[c], backing = backing[:samples:samples], backing[samples:]
	}
	return &Signal{Rate: rate, Data: data}
}

// FromSamples builds a single-channel signal that shares the given slice.
func FromSamples(rate float64, samples []float64) *Signal {
	return &Signal{Rate: rate, Data: [][]float64{samples}}
}

// Len returns N, the number of samples per channel.
func (s *Signal) Len() int {
	if s == nil || len(s.Data) == 0 {
		return 0
	}
	return len(s.Data[0])
}

// Channels returns C, the number of channels.
func (s *Signal) Channels() int {
	if s == nil {
		return 0
	}
	return len(s.Data)
}

// Duration returns the signal length in seconds (N / Rate).
func (s *Signal) Duration() float64 {
	if s == nil || s.Rate <= 0 {
		return 0
	}
	return float64(s.Len()) / s.Rate
}

// ErrNonFinite reports NaN or infinite samples where finite values are
// required.
var ErrNonFinite = errors.New("sigproc: non-finite sample")

// CheckFinite scans every sample and reports the first NaN or infinity,
// identifying its channel and index. A corrupted capture (DMA glitch, bad
// float decode, divide-by-zero upstream) should fail here, at ingestion,
// rather than silently poisoning correlation sums downstream.
func (s *Signal) CheckFinite() error {
	if s == nil {
		return nil
	}
	for c, ch := range s.Data {
		for i, v := range ch {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: channel %d sample %d is %v", ErrNonFinite, c, i, v)
			}
		}
	}
	return nil
}

// Validate reports structural problems: ragged channels or a non-positive
// rate on a non-empty signal.
func (s *Signal) Validate() error {
	if s == nil {
		return errors.New("sigproc: nil signal")
	}
	n := s.Len()
	for c, ch := range s.Data {
		if len(ch) != n {
			return fmt.Errorf("sigproc: channel %d has %d samples, want %d", c, len(ch), n)
		}
	}
	if n > 0 && s.Rate <= 0 {
		return fmt.Errorf("sigproc: non-positive rate %v", s.Rate)
	}
	return nil
}

// Slice returns the view x[n1:n2] across all channels, following the paper's
// x[n1:n2] notation (n1 inclusive, n2 exclusive). The returned signal shares
// backing storage with s. Slice panics if the range is out of bounds, like a
// Go slice expression.
func (s *Signal) Slice(n1, n2 int) *Signal {
	out := &Signal{Rate: s.Rate, Data: make([][]float64, len(s.Data))}
	for c := range s.Data {
		out.Data[c] = s.Data[c][n1:n2]
	}
	return out
}

// SliceInto is Slice writing the channel headers into dst and returning it,
// so a loop sliding a window over s can reuse one view instead of
// allocating a Signal per position. The view shares sample memory with s,
// like Slice; dst must not be s itself.
func (s *Signal) SliceInto(dst *Signal, n1, n2 int) *Signal {
	dst.Rate = s.Rate
	if cap(dst.Data) >= len(s.Data) {
		dst.Data = dst.Data[:len(s.Data)]
	} else {
		dst.Data = make([][]float64, len(s.Data))
	}
	for c := range s.Data {
		dst.Data[c] = s.Data[c][n1:n2]
	}
	return dst
}

// SliceClamped is Slice with the range clipped to [0, Len]. Useful at signal
// boundaries where the paper's windows may extend past the data.
func (s *Signal) SliceClamped(n1, n2 int) *Signal {
	n := s.Len()
	n1 = max(0, min(n1, n))
	n2 = max(n1, min(n2, n))
	return s.Slice(n1, n2)
}

// Channel returns the single-channel view x[:, c].
func (s *Signal) Channel(c int) *Signal {
	return &Signal{Rate: s.Rate, Data: [][]float64{s.Data[c]}}
}

// Clone returns a deep copy of s.
func (s *Signal) Clone() *Signal {
	out := New(s.Rate, s.Channels(), s.Len())
	for c := range s.Data {
		copy(out.Data[c], s.Data[c])
	}
	return out
}

// Scale multiplies every sample by gain, in place, and returns s.
func (s *Signal) Scale(gain float64) *Signal {
	for _, ch := range s.Data {
		for i := range ch {
			ch[i] *= gain
		}
	}
	return s
}

// Offset adds off to every sample, in place, and returns s.
func (s *Signal) Offset(off float64) *Signal {
	for _, ch := range s.Data {
		for i := range ch {
			ch[i] += off
		}
	}
	return s
}

// AppendSample appends one sample vector (one value per channel). It panics
// if len(v) does not match the channel count of a non-empty signal; on an
// empty signal it defines the channel count.
func (s *Signal) AppendSample(v ...float64) {
	if len(s.Data) == 0 {
		s.Data = make([][]float64, len(v))
	}
	if len(v) != len(s.Data) {
		panic(fmt.Sprintf("sigproc: append %d values to %d channels", len(v), len(s.Data)))
	}
	for c := range v {
		s.Data[c] = append(s.Data[c], v[c])
	}
}

// Mean returns the per-channel means.
func (s *Signal) Mean() []float64 {
	out := make([]float64, s.Channels())
	n := s.Len()
	if n == 0 {
		return out
	}
	for c, ch := range s.Data {
		out[c] = mean(ch)
	}
	return out
}

// Std returns the per-channel population standard deviations.
func (s *Signal) Std() []float64 {
	out := make([]float64, s.Channels())
	n := s.Len()
	if n == 0 {
		return out
	}
	for c, ch := range s.Data {
		m := mean(ch)
		var ss float64
		for _, v := range ch {
			d := v - m
			ss += d * d
		}
		out[c] = math.Sqrt(ss / float64(n))
	}
	return out
}

// RMS returns the per-channel root-mean-square values.
func (s *Signal) RMS() []float64 {
	out := make([]float64, s.Channels())
	n := s.Len()
	if n == 0 {
		return out
	}
	for c, ch := range s.Data {
		var ss float64
		for _, v := range ch {
			ss += v * v
		}
		out[c] = math.Sqrt(ss / float64(n))
	}
	return out
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// Concat appends all samples of other to s. Both signals must have the same
// channel count; the rate of s is kept.
func (s *Signal) Concat(other *Signal) error {
	if s.Channels() == 0 {
		s.Data = make([][]float64, other.Channels())
	}
	if other.Channels() != s.Channels() {
		return fmt.Errorf("sigproc: concat %d channels onto %d", other.Channels(), s.Channels())
	}
	for c := range s.Data {
		s.Data[c] = append(s.Data[c], other.Data[c]...)
	}
	return nil
}

// DropFront removes the first n samples of every channel in place,
// retaining the backing capacity. Streaming consumers use it to trim
// consumed samples from a growing buffer without cloning the tail.
func (s *Signal) DropFront(n int) {
	for c, ch := range s.Data {
		s.Data[c] = ch[:copy(ch, ch[n:])]
	}
}

// Decimate returns a new signal keeping every factor-th sample. The rate is
// divided accordingly. No anti-alias filtering is applied; callers that need
// it should low-pass first.
func (s *Signal) Decimate(factor int) *Signal {
	if factor < 1 {
		panic("sigproc: decimation factor < 1")
	}
	n := (s.Len() + factor - 1) / factor
	out := New(s.Rate/float64(factor), s.Channels(), n)
	for c, ch := range s.Data {
		for i := 0; i < n; i++ {
			out.Data[c][i] = ch[i*factor]
		}
	}
	return out
}

// ResampleLinear returns the signal linearly interpolated onto a new rate.
func (s *Signal) ResampleLinear(newRate float64) *Signal {
	if newRate <= 0 {
		panic("sigproc: non-positive resample rate")
	}
	n := s.Len()
	if n == 0 {
		return New(newRate, s.Channels(), 0)
	}
	outN := int(math.Floor(float64(n-1)*newRate/s.Rate)) + 1
	out := New(newRate, s.Channels(), outN)
	ratio := s.Rate / newRate
	for c, ch := range s.Data {
		for i := 0; i < outN; i++ {
			pos := float64(i) * ratio
			j := int(pos)
			if j >= n-1 {
				out.Data[c][i] = ch[n-1]
				continue
			}
			frac := pos - float64(j)
			out.Data[c][i] = ch[j]*(1-frac) + ch[j+1]*frac
		}
	}
	return out
}
