package core

import (
	"math"
	"math/rand"
	"testing"

	"nsync/internal/fault"
	"nsync/internal/sigproc"
)

// deadFrom returns a copy of s whose samples are stuck at their value at
// onset seconds (a dead sensor), via the fault injector.
func deadFrom(t *testing.T, s *sigproc.Signal, onset float64) *sigproc.Signal {
	t.Helper()
	inj, err := fault.NewInjector(1, fault.Spec{Kind: fault.StuckAt, Severity: 1, Onset: onset})
	if err != nil {
		t.Fatal(err)
	}
	out, err := inj.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHealthReasonStrings(t *testing.T) {
	want := map[HealthReason]string{
		HealthOK: "ok", NonFinite: "non-finite", Flat: "flat",
		Saturated: "saturated", Implausible: "implausible",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), s)
		}
	}
	if HealthReason(9).String() != "HealthReason(9)" {
		t.Errorf("unknown reason string = %q", HealthReason(9).String())
	}
}

func TestCheckSignalVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	ref := noiseSig(rng, 100, 3000) // 30 s

	if r, _, err := CheckSignal(ref, jittered(rng, ref, 300), HealthConfig{}); err != nil || r != HealthOK {
		t.Errorf("benign jitter: reason %v, err %v", r, err)
	}

	dead := deadFrom(t, ref, 15)
	r, at, err := CheckSignal(ref, dead, HealthConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r != Flat {
		t.Errorf("dead channel: reason %v, want flat", r)
	}
	if at < 15 || at > 20 {
		t.Errorf("dead channel flagged at %vs, want within one window of 15s", at)
	}

	inj, _ := fault.NewInjector(2, fault.Spec{Kind: fault.Saturation, Severity: 1, Onset: 10})
	sat, err := inj.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	if r, _, _ := CheckSignal(ref, sat, HealthConfig{}); r != Saturated {
		t.Errorf("clipped channel: reason %v, want saturated", r)
	}

	hot := ref.Clone()
	for i := 1000; i < hot.Len(); i++ {
		hot.Data[0][i] *= 20
	}
	if r, _, _ := CheckSignal(ref, hot, HealthConfig{}); r != Implausible {
		t.Errorf("20x hot channel: reason %v, want implausible", r)
	}

	poisoned := ref.Clone()
	poisoned.Data[0][500] = math.NaN()
	if r, _, _ := CheckSignal(ref, poisoned, HealthConfig{}); r != NonFinite {
		t.Errorf("NaN channel: reason %v, want non-finite", r)
	}

	// Short signals are judged as a single window, not skipped.
	if r, _, _ := CheckSignal(ref, sigproc.New(100, 1, 50), HealthConfig{}); r != Flat {
		t.Error("short all-zero signal should be flat")
	}
	if r, _, err := CheckSignal(ref, &sigproc.Signal{Rate: 100}, HealthConfig{}); err != nil || r != HealthOK {
		t.Errorf("empty signal: reason %v, err %v", r, err)
	}
}

func TestHealthMonitorQuarantineIsSticky(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ref := noiseSig(rng, 100, 3000)
	hm, err := NewHealthMonitor(ref, HealthConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dead := deadFrom(t, jittered(rng, ref, 300), 15)
	for pos := 0; pos < dead.Len(); pos += 97 {
		end := min(pos+97, dead.Len())
		if _, err := hm.Push(dead.Slice(pos, end)); err != nil {
			t.Fatal(err)
		}
	}
	if !hm.Quarantined() || hm.Reason() != Flat {
		t.Fatalf("dead stream not quarantined: %v", hm.Reason())
	}
	if at := hm.QuarantinedAt(); at < 15 || at > 20 {
		t.Errorf("quarantined at %vs, want within one window of 15s", at)
	}
	// Healthy samples after quarantine do not rehabilitate the channel.
	if r, err := hm.Push(noiseSig(rng, 100, 500)); err != nil || r != Flat {
		t.Errorf("post-quarantine push: reason %v, err %v", r, err)
	}
	if !hm.Quarantined() {
		t.Error("quarantine must be sticky")
	}
}

// fusedFixture builds a three-channel fused detector with per-channel
// references, plus the matching standalone detectors, trained on the same
// seeded runs.
type fusedFixture struct {
	refs    []*sigproc.Signal
	fd      *FusedDetector
	singles []*Detector
	rng     *rand.Rand
}

func newFusedFixture(t *testing.T, k int) *fusedFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(72))
	fx := &fusedFixture{rng: rng}
	var chans []FusedChannel
	for c := 0; c < 3; c++ {
		ref := noiseSig(rng, 100, 3000)
		fx.refs = append(fx.refs, ref)
		chans = append(chans, FusedChannel{
			Name:      []string{"acc", "mag", "aud"}[c],
			Reference: ref,
			Config:    Config{Sync: &DWMSynchronizer{Params: testDWMParams()}, OCC: OCCConfig{R: 0.3}},
		})
	}
	fd, err := NewFusedDetector(chans, FusedConfig{K: k})
	if err != nil {
		t.Fatal(err)
	}
	fx.fd = fd
	train := make([][]*sigproc.Signal, 3)
	for c, ref := range fx.refs {
		for i := 0; i < 5; i++ {
			train[c] = append(train[c], jittered(rng, ref, 300))
		}
	}
	if err := fd.Train(train); err != nil {
		t.Fatal(err)
	}
	for c, ref := range fx.refs {
		det, err := NewDetector(ref, Config{Sync: &DWMSynchronizer{Params: testDWMParams()}, OCC: OCCConfig{R: 0.3}})
		if err != nil {
			t.Fatal(err)
		}
		if err := det.TrainFromFeatures(nil); err == nil {
			t.Fatal("TrainFromFeatures(nil) should fail")
		}
		th, err := fd.Detector(c).Thresholds()
		if err != nil {
			t.Fatal(err)
		}
		det.SetThresholds(th)
		fx.singles = append(fx.singles, det)
	}
	return fx
}

// benignRun and maliciousRun build one time-aligned observation per channel.
func (fx *fusedFixture) benignRun() []*sigproc.Signal {
	out := make([]*sigproc.Signal, len(fx.refs))
	for c, ref := range fx.refs {
		out[c] = jittered(fx.rng, ref, 300)
	}
	return out
}

func (fx *fusedFixture) maliciousRun() []*sigproc.Signal {
	out := make([]*sigproc.Signal, len(fx.refs))
	for c, ref := range fx.refs {
		out[c] = corrupted(fx.rng, ref)
	}
	return out
}

func TestFusedDetectorMatchesSinglesWithoutFaults(t *testing.T) {
	fx := newFusedFixture(t, 0)
	if got := fx.fd.Channels(); len(got) != 3 || got[0] != "acc" {
		t.Fatalf("Channels() = %v", got)
	}
	for trial := 0; trial < 3; trial++ {
		obs := fx.benignRun()
		if trial == 2 {
			obs = fx.maliciousRun()
		}
		fv, err := fx.fd.Classify(obs)
		if err != nil {
			t.Fatal(err)
		}
		anySingle := false
		for c, det := range fx.singles {
			v, err := det.Classify(obs[c])
			if err != nil {
				t.Fatal(err)
			}
			cv := fv.Channels[c]
			if cv.Quarantined {
				t.Errorf("trial %d channel %s quarantined on clean signal (%v)", trial, cv.Name, cv.Health)
			}
			if cv.Verdict.Intrusion != v.Intrusion {
				t.Errorf("trial %d channel %s: fused vote %v, single detector %v", trial, cv.Name, cv.Verdict.Intrusion, v.Intrusion)
			}
			anySingle = anySingle || v.Intrusion
		}
		if fv.Intrusion != anySingle {
			t.Errorf("trial %d: fused %v, OR of singles %v", trial, fv.Intrusion, anySingle)
		}
		if fv.Healthy != 3 {
			t.Errorf("trial %d: healthy = %d, want 3", trial, fv.Healthy)
		}
	}
}

func TestFusedDetectorQuarantinesDeadChannel(t *testing.T) {
	fx := newFusedFixture(t, 0)

	// Benign print, dead first channel: the dead channel alone would raise
	// a stuck alarm (flat windows have maximal correlation distance), but
	// the fused verdict must stay benign because the channel is quarantined.
	obs := fx.benignRun()
	obs[0] = deadFrom(t, obs[0], 15)
	fv, err := fx.fd.Classify(obs)
	if err != nil {
		t.Fatal(err)
	}
	cv := fv.Channels[0]
	if !cv.Quarantined || cv.Health != Flat {
		t.Fatalf("dead channel not quarantined: %+v", cv)
	}
	if !cv.Verdict.Intrusion {
		t.Error("expected the dead channel's own verdict to be a (suppressed) stuck alarm")
	}
	if fv.Intrusion {
		t.Errorf("benign print with dead channel flagged: %+v", fv)
	}
	if fv.Healthy != 2 {
		t.Errorf("healthy = %d, want 2", fv.Healthy)
	}

	// Malicious print, dead first channel: the remaining healthy channels
	// must still detect it.
	obs = fx.maliciousRun()
	obs[0] = deadFrom(t, obs[0], 15)
	fv, err = fx.fd.Classify(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !fv.Intrusion {
		t.Fatalf("malicious print with dead channel missed: %+v", fv)
	}
	if !fv.Channels[0].Quarantined || fv.Channels[0].Health != Flat {
		t.Errorf("dead channel not quarantined on malicious run: %+v", fv.Channels[0])
	}
	if fv.Votes < 1 || fv.Healthy != 2 {
		t.Errorf("votes/healthy = %d/%d", fv.Votes, fv.Healthy)
	}
}

func TestFusedDetectorNonFiniteSkipsPipeline(t *testing.T) {
	fx := newFusedFixture(t, 0)
	obs := fx.benignRun()
	obs[1].Data[0][100] = math.Inf(1)
	fv, err := fx.fd.Classify(obs)
	if err != nil {
		t.Fatal(err)
	}
	cv := fv.Channels[1]
	if !cv.Quarantined || cv.Health != NonFinite {
		t.Fatalf("Inf channel not quarantined: %+v", cv)
	}
	if cv.Verdict.Intrusion || cv.Verdict.Triggered != nil {
		t.Error("NonFinite channel should not have run the pipeline")
	}
	if fv.Intrusion || fv.Healthy != 2 {
		t.Errorf("fused verdict with Inf channel: %+v", fv)
	}
}

func TestFuseQuorum(t *testing.T) {
	fd := &FusedDetector{k: 2, channels: make([]fusedChannel, 3)}
	vote := func(q, intr bool) ChannelVerdict {
		return ChannelVerdict{Quarantined: q, Verdict: Verdict{Intrusion: intr}}
	}
	// One vote of three healthy: below quorum 2.
	fv := fd.Fuse([]ChannelVerdict{vote(false, true), vote(false, false), vote(false, false)})
	if fv.Intrusion || fv.Votes != 1 || fv.Needed != 2 {
		t.Errorf("1/3 votes: %+v", fv)
	}
	// Two votes: quorum met.
	fv = fd.Fuse([]ChannelVerdict{vote(false, true), vote(false, true), vote(false, false)})
	if !fv.Intrusion {
		t.Errorf("2/3 votes: %+v", fv)
	}
	// Two channels quarantined: quorum shrinks to the 1 healthy channel.
	fv = fd.Fuse([]ChannelVerdict{vote(true, true), vote(true, false), vote(false, true)})
	if !fv.Intrusion || fv.Needed != 1 || fv.Healthy != 1 {
		t.Errorf("degraded quorum: %+v", fv)
	}
	// Everything quarantined: benign, but visibly uncovered.
	fv = fd.Fuse([]ChannelVerdict{vote(true, true), vote(true, true), vote(true, true)})
	if fv.Intrusion || fv.Healthy != 0 {
		t.Errorf("no coverage: %+v", fv)
	}
}

func TestFusedDetectorErrors(t *testing.T) {
	if _, err := NewFusedDetector(nil, FusedConfig{}); err == nil {
		t.Error("no channels: want error")
	}
	fx := newFusedFixture(t, 0)
	if err := fx.fd.Train(make([][]*sigproc.Signal, 1)); err == nil {
		t.Error("wrong training-set count: want error")
	}
	if _, err := fx.fd.Classify(nil); err == nil {
		t.Error("wrong observation count: want error")
	}
	if _, err := fx.fd.ClassifyChannel(9, fx.refs[0]); err == nil {
		t.Error("out-of-range channel: want error")
	}
}

// pushAll streams per-channel signals into the fused monitor in aligned
// chunks.
func pushAll(t *testing.T, fm *FusedMonitor, obs []*sigproc.Signal) []FusedAlert {
	t.Helper()
	maxLen := 0
	for _, s := range obs {
		maxLen = max(maxLen, s.Len())
	}
	var all []FusedAlert
	for pos := 0; pos < maxLen; pos += 97 {
		chunks := make([]*sigproc.Signal, len(obs))
		for c, s := range obs {
			chunks[c] = s.SliceClamped(pos, pos+97)
		}
		alerts, err := fm.Push(chunks)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, alerts...)
	}
	return all
}

func TestFusedMonitorDegradesGracefully(t *testing.T) {
	fx := newFusedFixture(t, 0)
	newFM := func() *FusedMonitor {
		var chans []FusedMonitorChannel
		for c, ref := range fx.refs {
			th, err := fx.fd.Detector(c).Thresholds()
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, FusedMonitorChannel{
				Name:       fx.fd.Channels()[c],
				Reference:  ref,
				Params:     testDWMParams(),
				Thresholds: th,
			})
		}
		fm, err := NewFusedMonitor(chans, FusedConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return fm
	}

	// Clean benign stream: no alerts, no quarantine.
	fm := newFM()
	if alerts := pushAll(t, fm, fx.benignRun()); len(alerts) != 0 || fm.Intrusion() {
		t.Fatalf("benign stream alerted: %v", alerts)
	}
	for _, st := range fm.ChannelStates() {
		if st.Quarantined || st.Voting {
			t.Errorf("benign stream channel state: %+v", st)
		}
	}

	// Benign stream with the first channel dying mid-print: quarantined,
	// no stuck alarm.
	fm = newFM()
	obs := fx.benignRun()
	obs[0] = deadFrom(t, obs[0], 15)
	if alerts := pushAll(t, fm, obs); len(alerts) != 0 || fm.Intrusion() {
		t.Fatalf("dead-channel benign stream alerted: %v", alerts)
	}
	st := fm.ChannelStates()[0]
	if !st.Quarantined || st.Health != Flat {
		t.Fatalf("dead channel state: %+v", st)
	}
	if st.QuarantinedAt < 15 || st.QuarantinedAt > 20 {
		t.Errorf("quarantined at %vs, want within one window of 15s", st.QuarantinedAt)
	}

	// Malicious stream with the first channel dead: the remaining healthy
	// channels still raise the fused alert.
	fm = newFM()
	obs = fx.maliciousRun()
	obs[0] = deadFrom(t, obs[0], 15)
	alerts := pushAll(t, fm, obs)
	if len(alerts) == 0 || !fm.Intrusion() {
		t.Fatal("dead-channel malicious stream raised no fused alert")
	}
	if a := alerts[0]; a.Healthy > 3 || a.Votes < 1 || a.Needed != 1 {
		t.Errorf("first alert = %+v", a)
	}
	if s := alerts[0].String(); s == "" {
		t.Error("empty fused alert string")
	}
	if st := fm.ChannelStates()[0]; !st.Quarantined {
		t.Errorf("dead channel not quarantined: %+v", st)
	}
}

func TestFusedMonitorQuorum(t *testing.T) {
	fx := newFusedFixture(t, 2)
	var chans []FusedMonitorChannel
	for c, ref := range fx.refs {
		th, err := fx.fd.Detector(c).Thresholds()
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, FusedMonitorChannel{
			Name: fx.fd.Channels()[c], Reference: ref,
			Params: testDWMParams(), Thresholds: th,
		})
	}
	fm, err := NewFusedMonitor(chans, FusedConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Only one channel observes the attack: below the 2-vote quorum.
	obs := fx.benignRun()
	obs[2] = corrupted(fx.rng, fx.refs[2])
	if alerts := pushAll(t, fm, obs); len(alerts) != 0 {
		t.Fatalf("single-vote stream reached 2-vote quorum: %v", alerts)
	}
	if _, err := fm.Push(nil); err == nil {
		t.Error("wrong chunk count: want error")
	}
	if _, err := NewFusedMonitor(nil, FusedConfig{}); err == nil {
		t.Error("no channels: want error")
	}
}
