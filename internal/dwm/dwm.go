// Package dwm implements Dynamic Window Matching, the paper's novel
// window-based dynamic synchronizer (Section VI-B). DWM slides a pair of
// windows across the observed signal a and the reference signal b, using
// Time Delay Estimation with Bias (TDEB) to track the horizontal
// displacement h_disp[i] between corresponding windows, with a low-frequency
// inertia term h_disp,low (Eq. 12) that prevents the process from running
// away after a bad estimate.
//
// DWM is streaming-capable: a Synchronizer consumes one observed window per
// Step call, so it can run in real time while a print is in progress.
package dwm

import (
	"errors"
	"fmt"
	"math"

	"nsync/internal/obs"
	"nsync/internal/sigproc"
	"nsync/internal/tde"
)

// Hot-path metrics (see DESIGN.md §10). Pointers are resolved once so a
// disabled registry costs one atomic load per Step.
var (
	stepTimer   = obs.GetTimer("dwm.step")
	searchWidth = obs.GetHistogram("dwm.search_width")
)

// Params holds the five DWM parameters of Section VI-C, expressed in
// seconds (t_win etc.) so the same configuration works at any sampling
// rate. Table IV of the paper lists the values used for the two printers.
type Params struct {
	// TWin is the window size t_win in seconds.
	TWin float64
	// THop is the hop t_hop in seconds (paper default: t_win/2).
	THop float64
	// TExt is the extended window size t_ext in seconds.
	TExt float64
	// TSigma is the TDEB Gaussian standard deviation t_sigma in seconds
	// (paper default: t_ext/2).
	TSigma float64
	// Eta controls how fast the low-frequency displacement component tracks
	// the raw TDEB output (Eq. 12). The paper starts at 0.1.
	Eta float64
}

// DefaultParams returns parameters derived from a window size using the
// paper's default ratios: t_hop = t_win/2, t_ext/t_sigma = 2.
func DefaultParams(tWin, tExt float64) Params {
	return Params{
		TWin:   tWin,
		THop:   tWin / 2,
		TExt:   tExt,
		TSigma: tExt / 2,
		Eta:    0.1,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.TWin <= 0:
		return fmt.Errorf("dwm: TWin must be positive, got %v", p.TWin)
	case p.THop <= 0 || p.THop > p.TWin:
		return fmt.Errorf("dwm: THop must be in (0, TWin], got %v", p.THop)
	case p.TExt <= 0:
		return fmt.Errorf("dwm: TExt must be positive, got %v", p.TExt)
	case p.TSigma < 0:
		return fmt.Errorf("dwm: TSigma must be non-negative, got %v", p.TSigma)
	case p.Eta < 0 || p.Eta > 1:
		return fmt.Errorf("dwm: Eta must be in [0, 1], got %v", p.Eta)
	}
	return nil
}

// SampleParams is Params converted to sample counts at a concrete rate.
type SampleParams struct {
	NWin   int
	NHop   int
	NExt   int
	NSigma float64
	Eta    float64
}

// Samples converts p to sample counts at the given rate. NWin/NHop/NExt are
// at least 1 sample.
func (p Params) Samples(rate float64) SampleParams {
	atLeast1 := func(v float64) int {
		n := int(math.Round(v))
		if n < 1 {
			n = 1
		}
		return n
	}
	return SampleParams{
		NWin:   atLeast1(p.TWin * rate),
		NHop:   atLeast1(p.THop * rate),
		NExt:   atLeast1(p.TExt * rate),
		NSigma: p.TSigma * rate,
		Eta:    p.Eta,
	}
}

// Result is the output of a DWM run over a pair of signals.
type Result struct {
	// HDisp is the horizontal displacement per window, in samples.
	HDisp []int
	// HLow is the low-frequency displacement component per window (Eq. 12).
	HLow []int
	// Scores holds the winning TDEB similarity score per window.
	Scores []float64
	// NHop and NWin are the hop and window sizes in samples, so callers can
	// map window indexes back to sample or time positions.
	NHop, NWin int
	// Rate is the sampling rate of the synchronized signals.
	Rate float64
}

// HDist returns the horizontal distances |h_disp[i]|, in samples.
func (r *Result) HDist() []float64 {
	out := make([]float64, len(r.HDisp))
	for i, d := range r.HDisp {
		out[i] = math.Abs(float64(d))
	}
	return out
}

// HDispSeconds returns h_disp converted to seconds.
func (r *Result) HDispSeconds() []float64 {
	out := make([]float64, len(r.HDisp))
	for i, d := range r.HDisp {
		out[i] = float64(d) / r.Rate
	}
	return out
}

// WindowTime returns the start time, in seconds, of window i.
func (r *Result) WindowTime(i int) float64 {
	return float64(i*r.NHop) / r.Rate
}

// Synchronizer runs the final DWM algorithm of Section VI-B against a fixed
// reference signal. Feed observed windows with Step (streaming) or whole
// signals with Run. A Synchronizer is not safe for concurrent use.
type Synchronizer struct {
	ref  *sigproc.Signal
	sp   SampleParams
	est  *tde.Estimator
	bias bool

	i      int
	hDisp  []int
	hLow   []int
	scores []float64
	// hLowPrev is h_disp,low[i-1]; the paper defines h_disp,low[-1] = 0.
	hLowPrev int
	// searchView is the reusable search-window view over ref; Propose
	// reslices it instead of allocating a Signal per step. Single-owner
	// session scratch (a Synchronizer is not safe for concurrent use).
	searchView sigproc.Signal
}

// Option configures a Synchronizer.
type Option func(*Synchronizer)

// WithEstimator replaces the default correlation-based TDE estimator.
func WithEstimator(e *tde.Estimator) Option {
	return func(s *Synchronizer) { s.est = e }
}

// WithoutBias disables the TDEB Gaussian bias, reducing DWM to the basic
// algorithm plus range extension. Exists for the TDEB ablation (Fig. 5).
func WithoutBias() Option {
	return func(s *Synchronizer) { s.bias = false }
}

// NewSynchronizer builds a DWM synchronizer for reference signal ref.
func NewSynchronizer(ref *sigproc.Signal, p Params, opts ...Option) (*Synchronizer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ref.Validate(); err != nil {
		return nil, fmt.Errorf("dwm: reference: %w", err)
	}
	if ref.Len() == 0 {
		return nil, errors.New("dwm: empty reference signal")
	}
	s := &Synchronizer{
		ref:  ref,
		sp:   p.Samples(ref.Rate),
		est:  tde.New(),
		bias: true,
	}
	if s.sp.NWin > ref.Len() {
		return nil, fmt.Errorf("dwm: window (%d samples) longer than reference (%d samples)", s.sp.NWin, ref.Len())
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// SampleParams returns the resolved sample-domain parameters.
func (s *Synchronizer) SampleParams() SampleParams { return s.sp }

// NumWindows returns how many observed windows fit in n samples.
func (s *Synchronizer) NumWindows(n int) int {
	if n < s.sp.NWin {
		return 0
	}
	return (n-s.sp.NWin)/s.sp.NHop + 1
}

// WindowIndex returns the index of the next window Step expects.
func (s *Synchronizer) WindowIndex() int { return s.i }

// Proposal is the computed-but-uncommitted outcome of one DWM step:
// everything Step would derive from the next observed window, without any
// synchronizer state change. Obtain one with Propose, apply it with
// Commit. The split lets callers interleave other fallible work (e.g. the
// Monitor's vertical-distance computation) between computing a step and
// committing it, so an error anywhere leaves the synchronizer exactly at
// the window it was on.
type Proposal struct {
	// HDisp is the window's horizontal displacement in samples (Eq. 13).
	HDisp int
	// Score is the winning TDEB similarity score.
	Score float64
	// hLow is the updated low-frequency displacement (Eq. 12), applied to
	// the synchronizer on Commit.
	hLow int
}

// Propose computes the displacement of observed window a{i} (which must be
// exactly NWin samples with the reference's channel count) without
// advancing the synchronizer: WindowIndex and the accumulated arrays are
// unchanged, and the same window can be proposed again after a failure.
//
// Propose implements lines 7-11 of the final algorithm: it searches for
// the window inside b{i; h_low[i-1]}_E, derives h_disp[i] (Eq. 13) and the
// next h_disp,low (Eq. 12). Near the edges of the reference, the extended
// search window is clipped to the available samples and the TDEB bias
// center moves with the prediction.
func (s *Synchronizer) Propose(window *sigproc.Signal) (Proposal, error) {
	t := stepTimer.Start()
	if window.Len() != s.sp.NWin {
		return Proposal{}, fmt.Errorf("dwm: window %d has %d samples, want %d", s.i, window.Len(), s.sp.NWin)
	}
	if window.Channels() != s.ref.Channels() {
		return Proposal{}, fmt.Errorf("dwm: window %d has %d channels, want %d", s.i, window.Channels(), s.ref.Channels())
	}

	// Predicted start of the matching window in b.
	center := s.i*s.sp.NHop + s.hLowPrev
	lo := center - s.sp.NExt
	hi := center + s.sp.NExt + s.sp.NWin
	bn := s.ref.Len()
	if lo < 0 {
		lo = 0
	}
	if hi > bn {
		hi = bn
	}
	if hi-lo < s.sp.NWin {
		// The search region fell off the reference. Anchor it to whichever
		// edge it overran so synchronization can keep limping along; the
		// resulting large h_dist is itself an intrusion indicator.
		if lo == 0 {
			hi = s.sp.NWin
		} else {
			lo = bn - s.sp.NWin
		}
	}
	searchWidth.Observe(float64(hi - lo))

	search := s.ref.SliceInto(&s.searchView, lo, hi)
	var (
		j     int
		score float64
		err   error
	)
	if s.bias {
		// Bias center = similarity-array index of the predicted position.
		biasCenter := center - lo
		j, score, err = s.est.DelayBiasedAt(search, window, biasCenter, s.sp.NSigma)
	} else {
		j, score, err = s.est.Delay(search, window)
	}
	if err != nil {
		return Proposal{}, fmt.Errorf("dwm: window %d: %w", s.i, err)
	}

	hDisp := lo + j - s.i*s.sp.NHop // Eq. (13), generalized for clipping.
	raw := lo + j - center          // j - n_ext in the unclipped case.
	stepTimer.Stop(t)
	return Proposal{
		HDisp: hDisp,
		Score: score,
		hLow:  roundInt(s.sp.Eta*float64(raw)) + s.hLowPrev, // Eq. (12).
	}, nil
}

// Commit applies a Proposal: the displacement is appended, h_disp,low
// advances, and WindowIndex moves to the next window. Only commit the
// proposal computed for the current window.
func (s *Synchronizer) Commit(p Proposal) {
	s.hDisp = append(s.hDisp, p.HDisp)
	s.hLow = append(s.hLow, p.hLow)
	s.scores = append(s.scores, p.Score)
	s.hLowPrev = p.hLow
	s.i++
}

// Reset returns the synchronizer to its initial state — window index 0,
// h_disp,low[-1] = 0, empty displacement arrays — while keeping the
// reference, the resolved parameters, and the accumulated slice capacity.
// It exists so a long-running service can pool synchronizers across print
// sessions instead of re-running NewSynchronizer per session; a reset
// synchronizer produces results identical to a freshly constructed one.
func (s *Synchronizer) Reset() {
	s.i = 0
	s.hDisp = s.hDisp[:0]
	s.hLow = s.hLow[:0]
	s.scores = s.scores[:0]
	s.hLowPrev = 0
}

// Step processes observed window a{i} and returns its horizontal
// displacement in samples together with the TDEB similarity score. It is
// Propose followed by Commit: on error nothing is committed.
func (s *Synchronizer) Step(window *sigproc.Signal) (hDisp int, score float64, err error) {
	p, err := s.Propose(window)
	if err != nil {
		return 0, 0, err
	}
	s.Commit(p)
	return p.HDisp, p.Score, nil
}

// Result snapshots the displacements accumulated so far.
func (s *Synchronizer) Result() *Result {
	r := &Result{
		HDisp:  append([]int(nil), s.hDisp...),
		HLow:   append([]int(nil), s.hLow...),
		Scores: append([]float64(nil), s.scores...),
		NHop:   s.sp.NHop,
		NWin:   s.sp.NWin,
		Rate:   s.ref.Rate,
	}
	return r
}

// Run synchronizes a complete observed signal a against the reference,
// returning the full displacement result. It is equivalent to feeding every
// window of a through Step.
func Run(a, b *sigproc.Signal, p Params, opts ...Option) (*Result, error) {
	s, err := NewSynchronizer(b, p, opts...)
	if err != nil {
		return nil, err
	}
	// Validate the observed signal up front, like the reference: a ragged
	// observed signal would otherwise only fail deep inside Step, one
	// confusing per-window error at a time.
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("dwm: observed: %w", err)
	}
	if a.Channels() != b.Channels() {
		return nil, fmt.Errorf("dwm: observed has %d channels, reference has %d", a.Channels(), b.Channels())
	}
	nWindows := s.NumWindows(a.Len())
	var winView sigproc.Signal
	for i := 0; i < nWindows; i++ {
		start := i * s.sp.NHop
		if _, _, err := s.Step(a.SliceInto(&winView, start, start+s.sp.NWin)); err != nil {
			return nil, err
		}
	}
	return s.Result(), nil
}

func roundInt(v float64) int {
	return int(math.Round(v))
}
