// Package resilience is the failure-handling layer of the experiment
// pipeline: classified errors (transient vs fatal), a deterministic seeded
// retry with exponential backoff, and a chaos injector that exercises both.
// The paper's evaluation is a multi-hour sweep on real printers; the
// reproduction's analogue is a long simulated sweep where one flaky work
// item must not discard every completed cell. internal/fault corrupts the
// *signals* a detector sees; this package handles (and injects) failures of
// the *pipeline* that produces the tables — the other half of the fault
// story (see DESIGN.md §11).
//
// The package is a leaf: it imports only the standard library and
// internal/obs, so pool, experiment, and the CLIs can all use it without
// cycles.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"
)

// ---- Panic isolation ----

// PanicError is a recovered panic, carrying the panic value and the stack
// of the panicking goroutine. A worker panic surfaces as one of these
// instead of crashing the process, so a sweep can mark the cell failed (or
// retry it) and keep every other result.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted stack of the panicking goroutine, captured at
	// recover time.
	Stack []byte
}

// Error renders the panic value and the captured stack, so a surfaced
// worker panic is as diagnosable as a crash would have been.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// AsPanicError wraps a recovered panic value (the result of recover()) with
// the current stack. Call it inside a deferred recover block.
func AsPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// ---- Error classification ----

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as transient: a retry policy with the default
// classifier will retry it. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// IsTransient reports whether err is worth retrying under the default
// classification: errors marked Transient and recovered panics are
// transient; context cancellation and deadline expiry are always fatal (the
// caller gave up, retrying would fight it); everything else is fatal —
// a deterministic pipeline failure reproduces on every attempt.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t *transientError
	if errors.As(err, &t) {
		return true
	}
	var p *PanicError
	return errors.As(err, &p)
}

// ---- Retry ----

// Policy configures Retry and Do. The zero value is usable: it means
// defaultAttempts attempts with the default backoff and classification.
type Policy struct {
	// MaxAttempts is the total number of attempts (not retries); values
	// < 1 mean the default (3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 5 ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 250 ms).
	MaxDelay time.Duration
	// Multiplier grows the backoff per retry (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay randomized around its nominal
	// value, in [0, 1] (default 0.5). The jitter stream derives from Seed
	// and the attempt number only, so a seeded run backs off identically
	// every time.
	Jitter float64
	// Seed drives the deterministic jitter.
	Seed int64
	// Classify decides whether an error is retryable; nil means
	// IsTransient.
	Classify func(error) bool
	// OnRetry, when set, observes every failed attempt that will be
	// retried, before the backoff sleep.
	OnRetry func(attempt int, err error)
	// Sleep replaces the context-aware backoff sleep, for tests; nil means
	// sleep for d or until ctx is done, whichever comes first.
	Sleep func(ctx context.Context, d time.Duration) error
}

const (
	defaultAttempts   = 3
	defaultBaseDelay  = 5 * time.Millisecond
	defaultMaxDelay   = 250 * time.Millisecond
	defaultMultiplier = 2.0
	defaultJitter     = 0.5
)

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = defaultAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultMaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = defaultMultiplier
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = defaultJitter
	}
	if p.Classify == nil {
		p.Classify = IsTransient
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// delay computes the backoff before retry number attempt (1-based):
// BaseDelay * Multiplier^(attempt-1), capped at MaxDelay, with
// deterministic jitter spreading the value over [d*(1-Jitter/2),
// d*(1+Jitter/2)].
func (p Policy) delay(attempt int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.Jitter > 0 {
		// One throwaway rand per (seed, attempt): cheap, and deterministic
		// regardless of how many other retries run concurrently.
		r := rand.New(rand.NewSource(p.Seed*1000003 + int64(attempt)))
		d *= 1 + p.Jitter*(r.Float64()-0.5)
	}
	return time.Duration(d)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op under the policy: panics inside op are recovered into
// *PanicError, transient errors are retried with exponential backoff, and
// fatal errors (including context cancellation) return immediately. The
// returned error is the last attempt's, so a final *PanicError surfaces
// with its stack intact.
func Do[T any](ctx context.Context, p Policy, op func(ctx context.Context) (T, error)) (T, error) {
	p = p.withDefaults()
	var zero T
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return zero, cerr
		}
		var v T
		v, err = runRecovered(ctx, op)
		if err == nil {
			return v, nil
		}
		if attempt >= p.MaxAttempts || !p.Classify(err) {
			return zero, err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		if serr := p.Sleep(ctx, p.delay(attempt)); serr != nil {
			return zero, serr
		}
	}
}

// Retry is Do for operations without a result.
func Retry(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	_, err := Do(ctx, p, func(ctx context.Context) (struct{}, error) {
		return struct{}{}, op(ctx)
	})
	return err
}

// runRecovered runs one attempt with panic isolation.
func runRecovered[T any](ctx context.Context, op func(ctx context.Context) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = AsPanicError(r)
		}
	}()
	return op(ctx)
}
