package gcode

import (
	"errors"
	"strings"
	"testing"
)

const sampleProgram = `
; A tiny test program
M104 S205
G28 ; home
G92 E0
G1 X10 Y20 Z0.2 E1.5 F1800
G0 X30 (rapid) Y40
N42 G1 X50 E3 *71
g1 x60 y70 e4.5
G4 P500
M106 S255
M107
`

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return p
}

func TestParseBasics(t *testing.T) {
	p := mustParse(t, sampleProgram)
	var codes []string
	for i := range p.Commands {
		codes = append(codes, p.Commands[i].Code)
	}
	want := []string{"", "M104", "G28", "G92", "G1", "G0", "G1", "G1", "G4", "M106", "M107"}
	if len(codes) != len(want) {
		t.Fatalf("parsed %d commands (%v), want %d", len(codes), codes, len(want))
	}
	for i := range want {
		if codes[i] != want[i] {
			t.Errorf("command %d code = %q, want %q", i, codes[i], want[i])
		}
	}
}

func TestParseWords(t *testing.T) {
	p := mustParse(t, "G1 X10.5 Y-2 E0.33 F1800")
	c := p.Commands[0]
	tests := []struct {
		letter byte
		want   float64
	}{
		{'X', 10.5}, {'Y', -2}, {'E', 0.33}, {'F', 1800},
		{'x', 10.5}, // case-insensitive lookup
	}
	for _, tt := range tests {
		got, ok := c.Get(tt.letter)
		if !ok || got != tt.want {
			t.Errorf("Get(%c) = %v, %v; want %v, true", tt.letter, got, ok, tt.want)
		}
	}
	if c.Has('Z') {
		t.Error("Has('Z') = true, want false")
	}
	if got := c.GetDefault('Z', 7); got != 7 {
		t.Errorf("GetDefault('Z', 7) = %v", got)
	}
}

func TestParseCompactSyntax(t *testing.T) {
	p := mustParse(t, "G1X10Y-2.5F1800")
	c := p.Commands[0]
	if c.Code != "G1" {
		t.Fatalf("code = %q", c.Code)
	}
	if v, _ := c.Get('Y'); v != -2.5 {
		t.Errorf("Y = %v, want -2.5", v)
	}
}

func TestParseChecksumAndLineNumber(t *testing.T) {
	p := mustParse(t, "N13 G1 X5 *101")
	c := p.Commands[0]
	if c.Code != "G1" || !c.Has('X') || c.Has('N') {
		t.Errorf("checksum/line-number handling wrong: %+v", c)
	}
}

func TestParseComments(t *testing.T) {
	p := mustParse(t, "G1 X1 ; move\n(standalone)\n; pure comment")
	if p.Commands[0].Comment != "move" {
		t.Errorf("trailing comment = %q", p.Commands[0].Comment)
	}
	// "(standalone)" produces no command; "; pure comment" yields a
	// comment-only command.
	if len(p.Commands) != 2 {
		t.Fatalf("parsed %d commands, want 2", len(p.Commands))
	}
	if p.Commands[1].Code != "" || p.Commands[1].Comment != "pure comment" {
		t.Errorf("comment-only command = %+v", p.Commands[1])
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"unterminated paren", "G1 (oops X1"},
		{"bad value", "G1 Xabc"},
		{"word without code", "X10 Y20"},
		{"letter without value", "G1 X"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseString(tt.src)
			if err == nil {
				t.Fatal("want parse error")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("error %T is not *ParseError", err)
			}
		})
	}
}

func TestRoundTripFixedPoint(t *testing.T) {
	// parse -> serialize -> parse -> serialize must be a fixed point
	// (DESIGN.md invariant).
	p1 := mustParse(t, sampleProgram)
	s1 := p1.SerializeString()
	p2 := mustParse(t, s1)
	s2 := p2.SerializeString()
	if s1 != s2 {
		t.Errorf("serialize not a fixed point:\n--- first\n%s\n--- second\n%s", s1, s2)
	}
}

func TestCommandString(t *testing.T) {
	var c Command
	c.Code = "G1"
	c.Set('F', 1800)
	c.Set('X', 10.5)
	c.Set('E', 0.125)
	if got := c.String(); got != "G1 X10.5 E0.125 F1800" {
		t.Errorf("String() = %q", got)
	}
	c.Comment = "hello"
	if got := c.String(); !strings.HasSuffix(got, " ;hello") {
		t.Errorf("String() with comment = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := mustParse(t, "G1 X1 Y2")
	q := p.Clone()
	q.Commands[0].Set('X', 99)
	if v, _ := p.Commands[0].Get('X'); v != 1 {
		t.Error("Clone shares word maps")
	}
}

func TestIsMove(t *testing.T) {
	p := mustParse(t, "G0 X1\nG1 X2\nM104 S200\nG4 P100")
	wants := []bool{true, true, false, false}
	for i, w := range wants {
		if got := p.Commands[i].IsMove(); got != w {
			t.Errorf("command %d IsMove = %v, want %v", i, got, w)
		}
	}
}

func TestDeleteWord(t *testing.T) {
	p := mustParse(t, "G1 X1 E5")
	p.Commands[0].Delete('E')
	if p.Commands[0].Has('E') {
		t.Error("Delete('E') did not remove the word")
	}
}
