package experiment

import (
	"fmt"

	"nsync/internal/core"
	"nsync/internal/ids"
	"nsync/internal/rebase"
	"nsync/internal/sensor"
	"nsync/internal/sigproc"
)

// DriftConfig parameterizes the sensor-drift accuracy-decay sweep.
type DriftConfig struct {
	// Channel is the drifting side channel (default ACC).
	Channel sensor.Channel
	// Specs are the drift processes applied per print; default a combined
	// aging scenario (noise-floor creep, clock skew, gain ramp, offset
	// wander) tuned so a frozen detector decays visibly within Prints.
	Specs []sensor.DriftSpec
	// Seed seeds the drift injector's randomness (default 1).
	Seed int64
	// Prints is how many prints of the drifting sequence to sweep
	// (default 6).
	Prints int
	// Rebase tunes the rolling re-baseline engine; a zero Margin inherits
	// the scale's NSYNC OCC margin.
	Rebase rebase.Config
	// Health tunes the engine's absorption health gate.
	Health core.HealthConfig
}

func (c DriftConfig) withDefaults(margin float64) DriftConfig {
	if c.Channel == 0 {
		c.Channel = sensor.ACC
	}
	if len(c.Specs) == 0 {
		// Rates are tuned so a frozen detector is clean at print 1 and
		// measurably decayed by print ~5: noise-floor creep is the gradual
		// driver, clock skew compounds it (DWM absorbs small skews, so the
		// per-print rate is tiny), and gain/offset exercise the reference
		// blend but barely move the correlation-based features.
		c.Specs = []sensor.DriftSpec{
			{Kind: sensor.DriftNoise, Rate: 0.06},
			{Kind: sensor.DriftClock, Rate: 0.0004},
			{Kind: sensor.DriftGain, Rate: 0.05},
			{Kind: sensor.DriftOffset, Rate: 0.05},
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Prints <= 0 {
		c.Prints = 6
	}
	if c.Rebase.Margin == 0 {
		c.Rebase.Margin = margin
	}
	c.Rebase.Health = c.Health
	return c
}

// DriftRow is one print of the decay sweep: the detector outcomes on test
// runs captured as print number Print of a drifting sequence.
type DriftRow struct {
	Printer string
	// Print is the 1-based sequence index (drift level).
	Print int
	// Frozen is the outcome of the boot-time detector, never re-baselined —
	// the paper's deployment model, aging without maintenance.
	Frozen Outcome
	// Rebased is the outcome of the rolling re-baselined detector, whose
	// reference and thresholds absorbed the verified-benign maintenance
	// prints of the sequence so far.
	Rebased Outcome
	// FreshFPR is the benign false-positive rate of a detector retrained
	// from scratch at this drift level — the floor any mitigation is
	// chasing.
	FreshFPR float64
	// Absorbed and Rejected are the re-baseline engine's cumulative
	// decisions after this print's maintenance pass.
	Absorbed, Rejected int
}

// driftDataset runs the sweep on one printer's dataset.
//
// The sequence model per print k: the printer runs one maintenance print per
// training run (verified benign, offered to the re-baseline engine), one
// attack print is offered to the engine to exercise its guardrail, and the
// full test roster is captured at drift level k and classified three ways —
// by the frozen boot detector, by the rolling re-baselined detector, and by
// a detector freshly retrained at level k.
func driftDataset(ds *Dataset, cfg DriftConfig) ([]DriftRow, error) {
	cfg = cfg.withDefaults(ds.Scale.OCCMarginNSYNC)
	ch := cfg.Channel
	params, ok := ds.Scale.DWM[ds.Printer]
	if !ok {
		return nil, fmt.Errorf("experiment: drift: scale %q has no DWM params for printer %q", ds.Scale.Name, ds.Printer)
	}
	refSig, err := ds.Ref.Signal(ch, ids.Raw)
	if err != nil {
		return nil, err
	}
	if _, err := sensor.NewDriftInjector(cfg.Seed, cfg.Specs...); err != nil {
		return nil, err
	}
	// drifted captures run's channel signal as print number k of the
	// sequence. The injector is re-seeded per run so two prints at the same
	// drift level do not share a noise realization (the deterministic drift
	// components — gain, clock skew — depend only on the level).
	drifted := func(run *ids.Run, k int) (*sigproc.Signal, error) {
		s, err := run.Signal(ch, ids.Raw)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			return s, nil
		}
		inj, err := sensor.NewDriftInjector(cfg.Seed^run.Seed, cfg.Specs...)
		if err != nil {
			return nil, err
		}
		return inj.Apply(s, ch, k)
	}

	newDet := func(ref *sigproc.Signal) (*core.Detector, error) {
		return core.NewDetector(ref, core.Config{
			Sync: &core.DWMSynchronizer{Params: params},
			OCC:  core.OCCConfig{R: cfg.Rebase.Margin},
		})
	}
	trainFeatures := func(det *core.Detector, drift int) ([]*core.Features, error) {
		return fanOut(ds.Train, func(_ int, run *ids.Run) (*core.Features, error) {
			s, err := drifted(run, drift)
			if err != nil {
				return nil, err
			}
			return det.Features(s)
		})
	}

	// The frozen boot detector, trained once on the clean roster.
	frozen, err := newDet(refSig)
	if err != nil {
		return nil, err
	}
	seedFeats, err := trainFeatures(frozen, 0)
	if err != nil {
		return nil, fmt.Errorf("experiment: drift train %s/%v: %w", ds.Printer, ch, err)
	}
	if err := frozen.TrainFromFeatures(seedFeats); err != nil {
		return nil, err
	}

	// The rolling re-baseline engine, seeded with the same boot state.
	eng, err := rebase.NewEngine(cfg.Rebase, []rebase.Channel{{
		Name: ch.String(), Reference: refSig, Params: params, Train: seedFeats,
	}})
	if err != nil {
		return nil, err
	}

	runs := ds.testRuns()
	var rows []DriftRow
	for k := 1; k <= cfg.Prints; k++ {
		// Maintenance pass: the benign prints of the interval, drifted to
		// level k, are offered to the engine (its own guardrail decides), plus
		// one attack print that the guardrail must keep out of the baseline.
		for _, run := range ds.Train {
			s, err := drifted(run, k)
			if err != nil {
				return nil, err
			}
			if _, err := eng.Absorb([]*sigproc.Signal{s}); err != nil {
				return nil, fmt.Errorf("experiment: drift absorb print %d: %w", k, err)
			}
		}
		if len(ds.TestMalicious) > 0 {
			s, err := drifted(ds.TestMalicious[(k-1)%len(ds.TestMalicious)], k)
			if err != nil {
				return nil, err
			}
			if _, err := eng.Absorb([]*sigproc.Signal{s}); err != nil {
				return nil, fmt.Errorf("experiment: drift attack probe print %d: %w", k, err)
			}
		}

		// The re-baselined detector after this interval's maintenance.
		rebased, err := newDet(eng.Reference(0))
		if err != nil {
			return nil, err
		}
		rebased.SetThresholds(eng.Thresholds(0))

		// The fresh floor: reference and training set recaptured at level k.
		driftedRef, err := drifted(ds.Ref, k)
		if err != nil {
			return nil, err
		}
		fresh, err := newDet(driftedRef)
		if err != nil {
			return nil, err
		}
		freshFeats, err := trainFeatures(fresh, k)
		if err != nil {
			return nil, fmt.Errorf("experiment: drift fresh train print %d: %w", k, err)
		}
		if err := fresh.TrainFromFeatures(freshFeats); err != nil {
			return nil, err
		}

		type verdicts struct{ frozen, rebased, fresh bool }
		vs, err := fanOut(runs, func(_ int, run *ids.Run) (verdicts, error) {
			s, err := drifted(run, k)
			if err != nil {
				return verdicts{}, err
			}
			var v verdicts
			for _, d := range []struct {
				det  *core.Detector
				flag *bool
			}{{frozen, &v.frozen}, {rebased, &v.rebased}, {fresh, &v.fresh}} {
				verdict, err := d.det.Classify(s)
				if err != nil {
					return verdicts{}, fmt.Errorf("experiment: drift classify %s seed %d print %d: %w", run.Label, run.Seed, k, err)
				}
				*d.flag = verdict.Intrusion
			}
			return v, nil
		})
		if err != nil {
			return nil, err
		}
		row := DriftRow{Printer: ds.Printer, Print: k, Absorbed: eng.Absorbed(), Rejected: eng.Rejected()}
		var freshOut Outcome
		for i, run := range runs {
			row.Frozen.record(run.Label, run.Malicious, vs[i].frozen)
			row.Rebased.record(run.Label, run.Malicious, vs[i].rebased)
			if !run.Malicious {
				freshOut.record(run.Label, false, vs[i].fresh)
			}
		}
		row.FreshFPR = freshOut.FPR()
		rows = append(rows, row)
	}
	return rows, nil
}

// Drift sweeps detection accuracy across a sequence of prints on a slowly
// drifting acquisition chain, for every dataset: the frozen boot detector
// (accuracy decay), the rolling re-baselined detector (the mitigation), and
// a freshly retrained detector (the recovery floor).
func Drift(datasets map[string]*Dataset, cfg DriftConfig) ([]DriftRow, error) {
	var rows []DriftRow
	for _, ds := range orderedDatasets(datasets) {
		r, err := driftDataset(ds, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}
