// Package gcode implements a G-code lexer, parser, program model, and
// serializer for the FDM dialect used by desktop 3D printers (Marlin/Cura
// style), plus the G-code manipulation attacks of Table I of the paper.
//
// G-code is the programming language of AM systems (Section II-A): commands
// specify target coordinates and velocities but not timing, which is why AM
// systems exhibit time noise.
package gcode

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Command is one G-code command: a code word ("G1", "M104") plus parameter
// words (X10.5, F1800, ...).
type Command struct {
	// Code is the normalized command code, e.g. "G1" or "M109".
	Code string
	// Words maps parameter letters (uppercase) to values.
	Words map[byte]float64
	// Comment holds any trailing comment text (without the ';').
	Comment string
	// Line is the 1-based source line, 0 for synthesized commands.
	Line int
}

// Has reports whether the command carries the given parameter letter.
func (c *Command) Has(letter byte) bool {
	_, ok := c.Words[upper(letter)]
	return ok
}

// Get returns the value of a parameter word and whether it is present.
func (c *Command) Get(letter byte) (float64, bool) {
	v, ok := c.Words[upper(letter)]
	return v, ok
}

// GetDefault returns the parameter value or def when absent.
func (c *Command) GetDefault(letter byte, def float64) float64 {
	if v, ok := c.Get(letter); ok {
		return v
	}
	return def
}

// Set stores a parameter word, allocating the map if needed.
func (c *Command) Set(letter byte, v float64) {
	if c.Words == nil {
		c.Words = make(map[byte]float64, 4)
	}
	c.Words[upper(letter)] = v
}

// Delete removes a parameter word if present.
func (c *Command) Delete(letter byte) {
	delete(c.Words, upper(letter))
}

// Clone returns a deep copy of the command.
func (c *Command) Clone() Command {
	out := *c
	if c.Words != nil {
		out.Words = make(map[byte]float64, len(c.Words))
		for k, v := range c.Words {
			out.Words[k] = v
		}
	}
	return out
}

// IsMove reports whether the command is a linear move (G0 or G1).
func (c *Command) IsMove() bool { return c.Code == "G0" || c.Code == "G1" }

// String renders the command in canonical G-code form.
func (c *Command) String() string {
	var b strings.Builder
	b.WriteString(c.Code)
	for _, letter := range sortedLetters(c.Words) {
		b.WriteByte(' ')
		b.WriteByte(letter)
		b.WriteString(trimFloat(c.Words[letter]))
	}
	if c.Comment != "" {
		if c.Code != "" || len(c.Words) > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte(';')
		b.WriteString(c.Comment)
	}
	return b.String()
}

// letterOrder is the conventional word ordering in sliced G-code.
const letterOrder = "XYZIJKREFPST"

func sortedLetters(words map[byte]float64) []byte {
	letters := make([]byte, 0, len(words))
	for k := range words {
		letters = append(letters, k)
	}
	rank := func(b byte) int {
		if i := strings.IndexByte(letterOrder, b); i >= 0 {
			return i
		}
		return len(letterOrder) + int(b)
	}
	sort.Slice(letters, func(i, j int) bool { return rank(letters[i]) < rank(letters[j]) })
	return letters
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 5, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func upper(b byte) byte {
	if b >= 'a' && b <= 'z' {
		return b - 'a' + 'A'
	}
	return b
}

// Program is a parsed G-code file.
type Program struct {
	Commands []Command
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	out := &Program{Commands: make([]Command, len(p.Commands))}
	for i := range p.Commands {
		out.Commands[i] = p.Commands[i].Clone()
	}
	return out
}

// ParseError reports a syntax error with its source line.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("gcode: line %d: %s", e.Line, e.Msg)
}

// Parse reads a G-code program. It accepts ';' comments, '(...)' inline
// comments, empty lines, line numbers (N words) and checksums ('*nn'), all
// of which are stripped. Unknown commands are kept verbatim so programs
// survive a parse/serialize round trip.
func Parse(r io.Reader) (*Program, error) {
	prog := &Program{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		cmd, ok, err := parseLine(sc.Text(), lineNo)
		if err != nil {
			return nil, err
		}
		if ok {
			prog.Commands = append(prog.Commands, cmd)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gcode: read: %w", err)
	}
	return prog, nil
}

// ParseString parses a G-code program held in a string.
func ParseString(s string) (*Program, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(line string, lineNo int) (Command, bool, error) {
	// Split off the ';' comment first: everything after ';' is opaque text,
	// so a '(' or '*' inside it must not confuse the code-part stripping
	// below.
	comment := ""
	if i := strings.IndexByte(line, ';'); i >= 0 {
		comment = strings.TrimSpace(line[i+1:])
		line = line[:i]
	}
	// Strip (...) comments.
	for {
		open := strings.IndexByte(line, '(')
		if open < 0 {
			break
		}
		closeIdx := strings.IndexByte(line[open:], ')')
		if closeIdx < 0 {
			return Command{}, false, &ParseError{lineNo, "unterminated ( comment"}
		}
		line = line[:open] + " " + line[open+closeIdx+1:]
	}
	// Strip '*' checksum.
	if i := strings.IndexByte(line, '*'); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" && comment == "" {
		return Command{}, false, nil
	}
	cmd := Command{Comment: comment, Line: lineNo}
	fields := tokenize(line)
	for i, f := range fields {
		if !isLetter(f[0]) {
			return Command{}, false, &ParseError{lineNo, fmt.Sprintf("bad word %q", f)}
		}
		letter := upper(f[0])
		valStr := f[1:]
		if letter == 'N' && i == 0 {
			continue // line number
		}
		if cmd.Code == "" && (letter == 'G' || letter == 'M' || letter == 'T') {
			num, err := strconv.ParseFloat(valStr, 64)
			if err != nil || math.IsNaN(num) || math.IsInf(num, 0) {
				return Command{}, false, &ParseError{lineNo, fmt.Sprintf("bad %c-code %q", letter, f)}
			}
			cmd.Code = fmt.Sprintf("%c%s", letter, trimFloat(num))
			continue
		}
		if valStr == "" {
			return Command{}, false, &ParseError{lineNo, fmt.Sprintf("word %q has no value", f)}
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return Command{}, false, &ParseError{lineNo, fmt.Sprintf("bad value %q", f)}
		}
		cmd.Set(letter, v)
	}
	if cmd.Code == "" && len(cmd.Words) > 0 {
		return Command{}, false, &ParseError{lineNo, "parameter words without a command code"}
	}
	if cmd.Code == "" && len(cmd.Words) == 0 && comment == "" {
		// A line that reduced to nothing (e.g. just an N word or a
		// checksum): drop it rather than emit an empty command, which
		// would serialize to a bare blank line.
		return Command{}, false, nil
	}
	return cmd, true, nil
}

// tokenize splits "G1X10 Y-2.5F1800" into ["G1","X10","Y-2.5","F1800"].
func tokenize(line string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		ch := line[i]
		switch {
		case ch == ' ' || ch == '\t':
			flush()
		case isLetter(ch):
			flush()
			cur.WriteByte(ch)
		default:
			cur.WriteByte(ch)
		}
	}
	flush()
	return out
}

func isLetter(b byte) bool {
	return (b >= 'A' && b <= 'Z') || (b >= 'a' && b <= 'z')
}

// Serialize writes the program as text, one command per line.
func (p *Program) Serialize(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range p.Commands {
		if _, err := bw.WriteString(p.Commands[i].String()); err != nil {
			return fmt.Errorf("gcode: write: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("gcode: write: %w", err)
		}
	}
	return bw.Flush()
}

// SerializeString renders the program as a string.
func (p *Program) SerializeString() string {
	var b strings.Builder
	_ = p.Serialize(&b) // strings.Builder never fails
	return b.String()
}
