package core

import (
	"math/rand"
	"testing"

	"nsync/internal/sigproc"
)

// flatSpan returns a copy of s whose samples in [from, to) are zeroed — a
// window-aligned flat fault the health monitor judges as Flat.
func flatSpan(s *sigproc.Signal, from, to int) *sigproc.Signal {
	out := s.Clone()
	for c := range out.Data {
		for i := from; i < to && i < out.Len(); i++ {
			out.Data[c][i] = 0
		}
	}
	return out
}

func pushHealth(t *testing.T, hm *HealthMonitor, s *sigproc.Signal) {
	t.Helper()
	for pos := 0; pos < s.Len(); pos += 97 {
		if _, err := hm.Push(s.SliceClamped(pos, pos+97)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHealthMonitorProbationaryRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	ref := noiseSig(rng, 100, 3000) // 30 s, health window 2 s = 200 samples
	hm, err := NewHealthMonitor(ref, HealthConfig{RecoveryWindows: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !hm.RecoveryEnabled() {
		t.Fatal("RecoveryEnabled should be true")
	}
	// Windows 5-6 flat (samples 1000-1400), healthy before and after.
	obs := flatSpan(noiseSig(rng, 100, 3000), 1000, 1400)
	pushHealth(t, hm, obs.Slice(0, 1500))
	if !hm.Quarantined() || hm.Reason() != Flat {
		t.Fatalf("flat span not quarantined: %v", hm.Reason())
	}
	if at := hm.QuarantinedAt(); at < 10 || at >= 12 {
		t.Errorf("quarantined at %vs, want the window starting at 10s", at)
	}
	// Two healthy windows are not enough for the 3-window probation.
	pushHealth(t, hm, obs.Slice(1500, 1800))
	if !hm.Quarantined() {
		t.Fatal("recovered before serving the full probation")
	}
	// The third consecutive healthy window lifts the quarantine.
	pushHealth(t, hm, obs.Slice(1800, 2100))
	if hm.Quarantined() {
		t.Fatal("probation served but still quarantined")
	}
	if hm.Recoveries() != 1 {
		t.Fatalf("Recoveries = %d, want 1", hm.Recoveries())
	}
	if r, err := hm.Push(obs.Slice(2100, 2200)); err != nil || r != HealthOK {
		t.Fatalf("post-recovery health = %v, err %v", r, err)
	}
	// The recovered span was judged but never cleared: ClearedSamples jumped
	// to the recovery point (window 10 ends at sample 2000) and resumes
	// normally afterwards.
	if got := hm.ClearedSamples(); got != 2200 {
		t.Errorf("ClearedSamples = %d, want 2200", got)
	}
}

func TestHealthMonitorProbationStreakResets(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	ref := noiseSig(rng, 100, 4000)
	hm, err := NewHealthMonitor(ref, HealthConfig{RecoveryWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Flat window 5, one healthy window, flat window 7: the healthy window
	// between the two faults must not count toward recovery afterwards.
	obs := flatSpan(flatSpan(noiseSig(rng, 100, 4000), 1000, 1200), 1400, 1600)
	pushHealth(t, hm, obs.Slice(0, 1800)) // one healthy window after the relapse
	if !hm.Quarantined() {
		t.Fatal("want still quarantined: streak must reset on the relapse window")
	}
	pushHealth(t, hm, obs.Slice(1800, 2000))
	if hm.Quarantined() {
		t.Fatal("two consecutive healthy windows after the relapse should recover")
	}
	if hm.Recoveries() != 1 {
		t.Errorf("Recoveries = %d, want 1", hm.Recoveries())
	}
}

func TestHealthMonitorStickyIgnoresRecoveryAccessors(t *testing.T) {
	// Regression: the default config keeps the original terminal-quarantine
	// behavior — no probation, Recoveries stays 0, post-quarantine pushes
	// return the original reason without judging anything.
	rng := rand.New(rand.NewSource(82))
	ref := noiseSig(rng, 100, 3000)
	hm, err := NewHealthMonitor(ref, HealthConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if hm.RecoveryEnabled() {
		t.Fatal("RecoveryEnabled should default to false")
	}
	pushHealth(t, hm, flatSpan(noiseSig(rng, 100, 3000), 1000, 1400))
	if !hm.Quarantined() {
		t.Fatal("flat span not quarantined")
	}
	for i := 0; i < 10; i++ {
		if r, err := hm.Push(noiseSig(rng, 100, 500)); err != nil || r != Flat {
			t.Fatalf("sticky push %d: reason %v, err %v", i, r, err)
		}
	}
	if !hm.Quarantined() || hm.Recoveries() != 0 {
		t.Fatalf("sticky quarantine lifted: quarantined=%v recoveries=%d", hm.Quarantined(), hm.Recoveries())
	}
	hm.Reset()
	if hm.Quarantined() || hm.Recoveries() != 0 || hm.ClearedSamples() != 0 {
		t.Error("Reset should clear quarantine and counters")
	}
}

func TestMonitorBridgeGapKeepsLock(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ref := noiseSig(rng, 100, 3000)
	th := Thresholds{CC: 50, HC: 25, VC: 0.9}
	m, err := NewMonitor(ref, testDWMParams(), th)
	if err != nil {
		t.Fatal(err)
	}
	// Reference prefix, a bridged gap, then the reference tail at the
	// correct stream position: the bridge must keep the DWM locked so the
	// resumed genuine samples raise no phantom-displacement alarm.
	if _, err := m.Push(ref.Slice(0, 1000)); err != nil {
		t.Fatal(err)
	}
	if alerts, err := m.BridgeGap(800); err != nil || len(alerts) != 0 {
		t.Fatalf("bridge alerts %v, err %v", alerts, err)
	}
	if alerts, err := m.Push(ref.Slice(1800, 2600)); err != nil || len(alerts) != 0 {
		t.Fatalf("post-bridge alerts %v, err %v", alerts, err)
	}
	if m.WindowsProcessed() == 0 {
		t.Fatal("no windows processed across the bridge")
	}
	f := m.Features()
	for i, v := range f.VDist {
		if v > 0.1 {
			t.Fatalf("v_dist[%d] = %v after bridge: lock lost", i, v)
		}
	}
	// Degenerate calls: zero-length is a no-op, and a bridge running past
	// the reference end clamps instead of panicking.
	if alerts, err := m.BridgeGap(0); err != nil || alerts != nil {
		t.Fatalf("BridgeGap(0) = %v, %v", alerts, err)
	}
	if _, err := m.BridgeGap(1000); err != nil {
		t.Fatal(err)
	}
}

func TestFusedMonitorProbationaryRecovery(t *testing.T) {
	fx := newFusedFixture(t, 0)
	newFM := func(recovery int) *FusedMonitor {
		var chans []FusedMonitorChannel
		for c, ref := range fx.refs {
			th, err := fx.fd.Detector(c).Thresholds()
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, FusedMonitorChannel{
				Name:       fx.fd.Channels()[c],
				Reference:  ref,
				Params:     testDWMParams(),
				Thresholds: th,
				Health:     HealthConfig{RecoveryWindows: recovery},
			})
		}
		fm, err := NewFusedMonitor(chans, FusedConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return fm
	}

	// Benign stream; channel 0 goes flat for two health windows mid-print
	// and then comes back. With probation enabled the channel must be
	// quarantined during the fault, recover afterwards, and the benign print
	// must end with no fused alert and all channels healthy.
	fm := newFM(2)
	obs := fx.benignRun()
	obs[0] = flatSpan(obs[0], 1000, 1400)
	sawQuarantine := false
	maxLen := 0
	for _, s := range obs {
		maxLen = max(maxLen, s.Len())
	}
	for pos := 0; pos < maxLen; pos += 97 {
		chunks := make([]*sigproc.Signal, len(obs))
		for c, s := range obs {
			chunks[c] = s.SliceClamped(pos, pos+97)
		}
		alerts, err := fm.Push(chunks)
		if err != nil {
			t.Fatal(err)
		}
		if len(alerts) != 0 {
			t.Fatalf("benign transient-fault stream alerted at %d: %v", pos, alerts)
		}
		if fm.ChannelStates()[0].Quarantined {
			sawQuarantine = true
		}
	}
	if _, err := fm.Flush(); err != nil {
		t.Fatal(err)
	}
	if !sawQuarantine {
		t.Fatal("flat span never quarantined the channel")
	}
	if st := fm.ChannelStates()[0]; st.Quarantined {
		t.Fatalf("channel did not recover: %+v", st)
	}
	if fm.Intrusion() {
		t.Fatal("benign stream with transient fault flagged as intrusion")
	}

	// After recovery the channel's vote is live again: the same transient
	// fault followed by a corrupted tail must still raise the fused alert,
	// with only the recovered channel observing the attack.
	fm = newFM(2)
	obs = fx.benignRun()
	obs[0] = flatSpan(obs[0], 1000, 1400)
	rng := rand.New(rand.NewSource(84))
	for i := 2400; i < obs[0].Len(); i++ {
		obs[0].Data[0][i] = rng.NormFloat64() * 2
	}
	alerts := pushAll(t, fm, obs)
	if _, err := fm.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(alerts) == 0 && !fm.Intrusion() {
		t.Fatal("recovered channel never re-voted on the post-recovery attack")
	}
	if st := fm.ChannelStates()[0]; st.Quarantined || !st.Voting {
		t.Fatalf("recovered channel state: %+v", st)
	}

	// Regression: with the default sticky config the same kind of stream
	// keeps the channel quarantined to the end. A fresh fixture replays the
	// exact benign draw the first phase proved alert-free.
	fx2 := newFusedFixture(t, 0)
	var chans []FusedMonitorChannel
	for c, ref := range fx2.refs {
		th, err := fx2.fd.Detector(c).Thresholds()
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, FusedMonitorChannel{
			Name: fx2.fd.Channels()[c], Reference: ref,
			Params: testDWMParams(), Thresholds: th,
		})
	}
	fm, err := NewFusedMonitor(chans, FusedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	obs = fx2.benignRun()
	obs[0] = flatSpan(obs[0], 1000, 1400)
	if alerts := pushAll(t, fm, obs); len(alerts) != 0 {
		t.Fatalf("sticky run alerted: %v", alerts)
	}
	if st := fm.ChannelStates()[0]; !st.Quarantined {
		t.Fatalf("sticky config recovered: %+v", st)
	}
}
