package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for i := 0; i < n; i++ {
			ang := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			sum += x[i] * cmplx.Rect(1, ang)
		}
		out[k] = sum
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 60, 64, 100, 128} {
		x := randComplex(rng, n)
		got := Forward(x)
		want := naiveDFT(x)
		if e := maxErr(got, want); e > 1e-8 {
			t.Errorf("n=%d: max error %v vs naive DFT", n, e)
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 6, 8, 13, 64, 100, 255, 256} {
		x := randComplex(rng, n)
		y := Inverse(Forward(x))
		if e := maxErr(x, y); e > 1e-9 {
			t.Errorf("n=%d: round-trip error %v", n, e)
		}
	}
}

func TestForwardDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	orig := append([]complex128(nil), x...)
	Forward(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("Forward mutated its input")
		}
	}
}

func TestForwardRealKnownSpectrum(t *testing.T) {
	// A pure cosine at bin 3 of a 32-point transform.
	n := 32
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 3 * float64(i) / float64(n))
	}
	spec := ForwardReal(x)
	if len(spec) != n/2+1 {
		t.Fatalf("spectrum length = %d, want %d", len(spec), n/2+1)
	}
	mags := Magnitudes(spec)
	for k, m := range mags {
		want := 0.0
		if k == 3 {
			want = float64(n) / 2
		}
		if math.Abs(m-want) > 1e-9 {
			t.Errorf("bin %d magnitude = %v, want %v", k, m, want)
		}
	}
}

func TestForwardRealDCComponent(t *testing.T) {
	x := []float64{2, 2, 2, 2}
	spec := ForwardReal(x)
	if math.Abs(cmplx.Abs(spec[0])-8) > 1e-12 {
		t.Errorf("DC bin = %v, want 8", spec[0])
	}
	for k := 1; k < len(spec); k++ {
		if cmplx.Abs(spec[k]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", k, spec[k])
		}
	}
}

func TestForwardRealEmpty(t *testing.T) {
	if got := ForwardReal(nil); got != nil {
		t.Errorf("ForwardReal(nil) = %v, want nil", got)
	}
}

// Parseval's theorem: sum |x|^2 == (1/N) sum |X|^2.
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{8, 15, 64, 99} {
		x := randComplex(rng, n)
		spec := Forward(x)
		var timeE, freqE float64
		for i := range x {
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		for i := range spec {
			freqE += real(spec[i])*real(spec[i]) + imag(spec[i])*imag(spec[i])
		}
		freqE /= float64(n)
		if math.Abs(timeE-freqE) > 1e-8*math.Max(1, timeE) {
			t.Errorf("n=%d: Parseval violated: %v vs %v", n, timeE, freqE)
		}
	}
}

// Linearity: FFT(a*x + y) = a*FFT(x) + FFT(y).
func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 48 // non-power-of-two exercises Bluestein
	x := randComplex(rng, n)
	y := randComplex(rng, n)
	a := complex(2.5, -1.25)
	combined := make([]complex128, n)
	for i := range combined {
		combined[i] = a*x[i] + y[i]
	}
	got := Forward(combined)
	fx, fy := Forward(x), Forward(y)
	want := make([]complex128, n)
	for i := range want {
		want[i] = a*fx[i] + fy[i]
	}
	if e := maxErr(got, want); e > 1e-8 {
		t.Errorf("linearity error %v", e)
	}
}

func TestNextPow2(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	}
	for _, tt := range tests {
		if got := NextPow2(tt.in); got != tt.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func BenchmarkForward1024(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	x := randComplex(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}

func BenchmarkForward1000Bluestein(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	x := randComplex(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}
