package nsync

// BenchmarkJournalOverhead prices the crash-safety tax: the same wave of
// mixed concurrent replay sessions is served twice by identically configured
// servers — once journaling every admit, snapshot, and finish to disk, once
// with journaling off — and the probe reports the on/off throughput ratio.
// benchcheck pins that ratio above journalThroughputFloor (the issue's
// "journaling costs at most ~10%" budget, with headroom for noisy CI
// runners) and wrong_verdicts at zero: durability paid for with lost
// detection accuracy or a double-digit slowdown fails the build.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"nsync/internal/ingest"
)

const (
	// journalBenchWave is how many concurrent sessions one wave replays —
	// smaller than FleetLoad's: this probe measures a ratio, not capacity.
	journalBenchWave = 16
	// journalBenchSnapshotEvery forces ~2 monitor snapshots per session at
	// this probe's 10-frames-per-channel stream, so the snapshot path (the
	// expensive part of journaling) is actually in the measured loop.
	journalBenchSnapshotEvery = 8
	// journalBenchWavesPerOp batches several waves into each measured op: a
	// single 16-session wave finishes in tens of milliseconds, too little
	// signal for a ratio two schedulers can agree on.
	journalBenchWavesPerOp = 4
)

// journalBenchArm is one measured configuration: a running server plus the
// accumulated streaming time and verdict tally for the waves it has served.
type journalBenchArm struct {
	tag      string
	addr     string
	shutdown func()
	elapsed  time.Duration
	wrong    int
	waves    int
}

// newJournalBenchArm boots a fresh single-shard server over its own pool,
// journaling iff j != nil.
func newJournalBenchArm(b *testing.B, fx *fleetBenchFixture, j *ingest.Journal, tag string) *journalBenchArm {
	b.Helper()
	pool := ingest.NewSharedPool(nil)
	if _, err := pool.Register(fx.model); err != nil {
		b.Fatal(err)
	}
	srv, err := ingest.NewServer(ingest.Config{
		Factory:             pool,
		Journal:             j,
		SnapshotEveryFrames: journalBenchSnapshotEvery,
		ShedWatermark:       1 << 20,
		ReadTimeout:         30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // exits on Shutdown
	return &journalBenchArm{
		tag:  tag,
		addr: l.Addr().String(),
		shutdown: func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				b.Error(err)
			}
		},
	}
}

// wave replays one journalBenchWave-session wave against the arm and, when
// timed, adds its wall time to the arm's total.
func (a *journalBenchArm) wave(b *testing.B, fx *fleetBenchFixture, timed bool) {
	b.Helper()
	iter := a.waves
	a.waves++
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	var errs int
	start := time.Now()
	for i := 0; i < journalBenchWave; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sigs, expect := fx.benign[i%len(fx.benign)], false
			if i%fleetAttackEvery == 0 {
				sigs, expect = fx.attack[i%len(fx.attack)], true
			}
			v, err := ingest.Replay(a.addr, ingest.Hello{
				SessionID: fmt.Sprintf("jb-%s-%d-%04d", a.tag, iter, i),
				Channels:  fx.specs,
			}, sigs, ingest.ReplayOptions{
				FrameSamples: 200, Seed: int64(iter*journalBenchWave + i),
				Timeout: 60 * time.Second,
			})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				errs++
				if firstErr == nil {
					firstErr = err
				}
			case v.Intrusion != expect:
				a.wrong++
			}
		}(i)
	}
	wg.Wait()
	if timed {
		a.elapsed += time.Since(start)
	}
	if errs > 0 {
		b.Fatalf("journal=%s: %d sessions failed in transport, first: %v", a.tag, errs, firstErr)
	}
}

// BenchmarkJournalOverhead reports journaled fleet throughput, the on/off
// throughput ratio, the snapshot count (proving the snapshot path ran), and
// wrong_verdicts across both arms. The arms serve alternating waves rather
// than back-to-back blocks: on a loaded CI runner a block design charges
// whatever the machine was doing during one arm entirely to that arm, and
// the ratio inherits the noise (observed swings of ±20% with a real
// steady-state overhead near 2%). One untimed warm-up wave per arm absorbs
// one-time costs — gob type compilation, first-connection setup — that
// would otherwise all land on the journaled arm, which runs first.
func BenchmarkJournalOverhead(b *testing.B) {
	fx := fleetFixture(b)
	dir := b.TempDir()
	j, rec, err := ingest.OpenJournal(dir, ingest.JournalConfig{})
	if err != nil {
		b.Fatal(err)
	}
	if len(rec) != 0 {
		b.Fatalf("fresh journal recovered %d sessions", len(rec))
	}
	defer j.Close() //nolint:errcheck // bench teardown

	on := newJournalBenchArm(b, fx, j, "on")
	defer on.shutdown()
	off := newJournalBenchArm(b, fx, nil, "off")
	defer off.shutdown()

	b.ResetTimer()
	on.wave(b, fx, false) // warm-up
	off.wave(b, fx, false)
	for w := 0; w < b.N*journalBenchWavesPerOp; w++ {
		on.wave(b, fx, true)
		off.wave(b, fx, true)
	}
	b.StopTimer()

	sessions := float64(b.N * journalBenchWavesPerOp * journalBenchWave)
	onRate := sessions / on.elapsed.Seconds()
	offRate := sessions / off.elapsed.Seconds()
	b.ReportMetric(onRate, "sessions_per_sec")
	b.ReportMetric(onRate/offRate, "throughput_ratio")
	b.ReportMetric(float64(j.Snapshots()), "journal_snapshots")
	b.ReportMetric(float64(on.wrong+off.wrong), "wrong_verdicts")
}
