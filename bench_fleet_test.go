package nsync

// BenchmarkFleetLoad measures the sharded ingest daemon as a fleet would
// load it: a Router spread over several in-process shards serving one
// SharedPool model, with a wave of concurrent replay clients per benchmark
// op streaming mixed benign and attack prints. The reported metrics are the
// operator-facing fleet numbers — completed sessions per core-second, p99
// verdict latency, and the shed rate — plus a wrong_verdicts count that
// benchcheck asserts stays zero: a fleet throughput number earned by
// misclassifying lanes is not a throughput number.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"nsync/internal/core"
	"nsync/internal/dwm"
	"nsync/internal/ingest"
	"nsync/internal/registry"
	"nsync/internal/sigproc"
)

const (
	// fleetWave is how many concurrent sessions one benchmark op replays.
	fleetWave = 32
	// fleetShards is the router's shard count.
	fleetShards = 4
	// fleetAttackEvery sends every Nth session down the attack lane.
	fleetAttackEvery = 4
)

// fleetBenchFixture is a small trained two-channel model plus canned
// observations, built once per process.
type fleetBenchFixture struct {
	model  *registry.Model
	specs  []ingest.ChannelSpec
	benign [][]*sigproc.Signal // per-variant, one signal per channel
	attack [][]*sigproc.Signal
}

var (
	fleetOnce sync.Once
	fleetFx   *fleetBenchFixture
	fleetErr  error
)

func fleetNoise(rng *rand.Rand, rate float64, lanes, n int) *sigproc.Signal {
	s := sigproc.New(rate, lanes, n)
	for l := 0; l < lanes; l++ {
		for i := 0; i < n; i++ {
			s.Data[l][i] = rng.NormFloat64()
		}
	}
	return s
}

func fleetPerturbed(rng *rand.Rand, ref *sigproc.Signal) *sigproc.Signal {
	s := ref.Clone()
	for l := range s.Data {
		for i := range s.Data[l] {
			s.Data[l][i] += 0.05 * rng.NormFloat64()
		}
	}
	return s
}

// fleetAttacked replaces the second half of a benign observation with
// uncorrelated 2-sigma noise — a substituted design deviating mid-print.
func fleetAttacked(rng *rand.Rand, ref *sigproc.Signal) *sigproc.Signal {
	s := fleetPerturbed(rng, ref)
	for l := range s.Data {
		for i := s.Len() / 2; i < s.Len(); i++ {
			s.Data[l][i] = 2 * rng.NormFloat64()
		}
	}
	return s
}

func newFleetFixture() (*fleetBenchFixture, error) {
	rng := rand.New(rand.NewSource(41))
	params := dwm.Params{TWin: 0.5, THop: 0.25, TExt: 0.2, TSigma: 0.1, Eta: 0.1}
	fx := &fleetBenchFixture{model: &registry.Model{K: 1}}
	layout := []struct {
		name  string
		lanes int
	}{{"ACC", 2}, {"MAG", 1}}
	var refs []*sigproc.Signal
	for _, ch := range layout {
		ref := fleetNoise(rng, 100, ch.lanes, 2000)
		det, err := core.NewDetector(ref, core.Config{
			Sync: &core.DWMSynchronizer{Params: params},
			OCC:  core.OCCConfig{R: 0.3},
		})
		if err != nil {
			return nil, err
		}
		var train []*sigproc.Signal
		for i := 0; i < 4; i++ {
			train = append(train, fleetPerturbed(rng, ref))
		}
		if err := det.Train(train); err != nil {
			return nil, err
		}
		th, err := det.Thresholds()
		if err != nil {
			return nil, err
		}
		refs = append(refs, ref)
		fx.model.Channels = append(fx.model.Channels, registry.ChannelModel{
			Name: ch.name, Reference: ref, Params: params, Thresholds: th,
		})
		fx.specs = append(fx.specs, ingest.ChannelSpec{Name: ch.name, Lanes: ch.lanes, Rate: ref.Rate})
	}
	// A handful of canned observations, reused round-robin across the wave:
	// the fleet's cost is in serving, not in simulating distinct printers.
	for v := 0; v < 4; v++ {
		var sigs []*sigproc.Signal
		for _, ref := range refs {
			sigs = append(sigs, fleetPerturbed(rng, ref))
		}
		fx.benign = append(fx.benign, sigs)
	}
	for v := 0; v < 2; v++ {
		var sigs []*sigproc.Signal
		for _, ref := range refs {
			sigs = append(sigs, fleetAttacked(rng, ref))
		}
		fx.attack = append(fx.attack, sigs)
	}
	return fx, nil
}

func fleetFixture(b *testing.B) *fleetBenchFixture {
	b.Helper()
	fleetOnce.Do(func() { fleetFx, fleetErr = newFleetFixture() })
	if fleetErr != nil {
		b.Fatal(fleetErr)
	}
	return fleetFx
}

// fleetBenchResult is one session's outcome inside the benchmark.
type fleetBenchResult struct {
	ok, wrong, shed bool
	err             error
	latency         time.Duration
}

// BenchmarkFleetLoad replays fleetWave concurrent mixed sessions per op
// against a fleetShards-way Router serving a SharedPool model, and reports
// sessions_per_core_sec, p99_verdict_ms, shed_rate, and wrong_verdicts.
func BenchmarkFleetLoad(b *testing.B) {
	fx := fleetFixture(b)
	pool := ingest.NewSharedPool(nil)
	if _, err := pool.Register(fx.model); err != nil {
		b.Fatal(err)
	}
	router, err := ingest.NewRouter(fleetShards, ingest.Config{
		Factory:       pool,
		ShedWatermark: 1 << 20, // shedding is not what this benchmark measures
		ReadTimeout:   30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go router.Serve(l) //nolint:errcheck // exits on Shutdown
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := router.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	}()
	addr := l.Addr().String()

	var total, ok, wrong, shed, errs int
	var firstErr error
	var latencies []time.Duration
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		results := make([]fleetBenchResult, fleetWave)
		var wg sync.WaitGroup
		for i := 0; i < fleetWave; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sigs, expect := fx.benign[i%len(fx.benign)], false
				if i%fleetAttackEvery == 0 {
					sigs, expect = fx.attack[i%len(fx.attack)], true
				}
				stats := &ingest.ReplayStats{}
				v, err := ingest.Replay(addr, ingest.Hello{
					SessionID: fmt.Sprintf("bench-%d-%04d", iter, i),
					Channels:  fx.specs,
					Tenant:    fmt.Sprintf("cell-%d", i%4),
				}, sigs, ingest.ReplayOptions{
					FrameSamples: 200, Seed: int64(iter*fleetWave + i),
					Timeout: 60 * time.Second, Stats: stats,
				})
				var se *ingest.ServerError
				switch {
				case errors.As(err, &se) && (strings.Contains(se.Msg, "shed") || strings.Contains(se.Msg, "overloaded")):
					results[i] = fleetBenchResult{shed: true}
				case err != nil:
					results[i] = fleetBenchResult{err: err}
				case v.Intrusion != expect:
					results[i] = fleetBenchResult{wrong: true, latency: stats.FinishLatency}
				default:
					results[i] = fleetBenchResult{ok: true, latency: stats.FinishLatency}
				}
			}(i)
		}
		wg.Wait()
		for _, r := range results {
			total++
			switch {
			case r.ok:
				ok++
				latencies = append(latencies, r.latency)
			case r.wrong:
				wrong++
				latencies = append(latencies, r.latency)
			case r.shed:
				shed++
			default:
				errs++
				if firstErr == nil {
					firstErr = r.err
				}
			}
		}
	}
	b.StopTimer()
	if errs > 0 {
		b.Fatalf("%d/%d sessions failed in transport, first: %v", errs, total, firstErr)
	}
	p99 := time.Duration(0)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, c int) bool { return latencies[a] < latencies[c] })
		p99 = latencies[len(latencies)*99/100]
	}
	cores := float64(runtime.GOMAXPROCS(0))
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(ok+wrong)/elapsed/cores, "sessions_per_core_sec")
	}
	b.ReportMetric(float64(total), "sessions")
	b.ReportMetric(float64(p99.Microseconds())/1000, "p99_verdict_ms")
	b.ReportMetric(float64(shed)/float64(total), "shed_rate")
	b.ReportMetric(float64(wrong), "wrong_verdicts")
}
