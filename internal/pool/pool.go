// Package pool is the bounded fan-out primitive behind the parallel
// evaluation engine: it runs independent work items on a fixed number of
// worker goroutines and collects results by index, so callers get
// byte-identical output regardless of the worker count or goroutine
// scheduling. The first error cancels the shared context, which stops
// workers from starting further items.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"nsync/internal/obs"
)

// queueLatency measures, per work item, how long the item waited between Map
// being called and a worker picking it up — the fan-out queueing delay (see
// DESIGN.md §10). Only the parallel path reports; the serial fast path has
// no queue.
var queueLatency = obs.GetTimer("pool.queue_latency")

// Resolve maps a worker-count setting to a concrete pool size: values < 1
// mean "one worker per available CPU" (runtime.GOMAXPROCS(0)).
func Resolve(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Map applies f to every item on at most workers goroutines (workers < 1
// means GOMAXPROCS) and returns the results in item order. Work items are
// claimed in index order, but may complete in any order; out[i] always
// holds f's result for items[i], so the output is deterministic for
// deterministic f. The first error observed cancels ctx for the remaining
// calls and is returned; results computed before the failure are discarded.
func Map[T, R any](ctx context.Context, workers int, items []T, f func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, ctx.Err()
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	if workers == 1 {
		// Serial fast path: no goroutines, same cancellation semantics.
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := f(ctx, i, item)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	enqueued := queueLatency.Start() // zero when metrics are disabled
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				queueLatency.Stop(enqueued)
				r, err := f(ctx, i, items[i])
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, ctx.Err()
}

// Each runs f for indexes [0, n) with the same scheduling, determinism, and
// cancellation rules as Map, for callers that fill their own structures.
func Each(ctx context.Context, workers, n int, f func(ctx context.Context, i int) error) error {
	idx := make([]struct{}, n)
	_, err := Map(ctx, workers, idx, func(ctx context.Context, i int, _ struct{}) (struct{}, error) {
		return struct{}{}, f(ctx, i)
	})
	return err
}
