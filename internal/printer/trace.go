package printer

import (
	"fmt"
	"math"
)

// Trace is the ground-truth physical state of a simulated print, sampled at
// a fixed master rate. Sensor models derive side-channel signals from it.
// Storage is structure-of-arrays so sensors can stream over single fields.
type Trace struct {
	// Rate is the master sampling rate in Hz.
	Rate float64

	// Tool position (mm) and velocity (mm/s).
	X, Y, Z    []float64
	VX, VY, VZ []float64

	// MotorV holds actuator velocities (mm/s) per motor. For a Cartesian
	// machine these equal the axis velocities; for a delta they are the
	// carriage velocities.
	MotorV [3][]float64

	// MotorP holds actuator positions (mm) per motor. Stepper vibration and
	// acoustic tones are locked to actuator position (steps happen at fixed
	// positions along the path), which is what makes raw side-channel
	// waveforms repeatable across runs up to time noise.
	MotorP [3][]float64

	// E is the extruder position (mm of filament).
	E []float64

	// EVel is the extruder feed velocity (mm of filament per second).
	EVel []float64

	// Fan is the part-cooling fan duty in [0, 1].
	Fan []float64

	// Hotend and Bed are heater temperatures (Celsius); HotendOn and BedOn
	// are the bang-bang heater states (0 or 1).
	Hotend, Bed     []float64
	HotendOn, BedOn []float64

	// Layer is the zero-based layer index per sample (-1 before the first
	// layer).
	Layer []int

	// LayerStart records the start time (s) of each layer.
	LayerStart []float64

	// Events annotate command-level milestones (heat-wait done, homing
	// done) with their timestamps, for diagnostics.
	Events []Event
}

// Event is a timestamped annotation in a trace.
type Event struct {
	T    float64
	Kind string
}

// Len returns the number of samples.
func (tr *Trace) Len() int { return len(tr.X) }

// Duration returns the trace length in seconds.
func (tr *Trace) Duration() float64 {
	if tr.Rate <= 0 {
		return 0
	}
	return float64(tr.Len()) / tr.Rate
}

// grow appends one zeroed sample slot and returns its index.
func (tr *Trace) grow() int {
	tr.X = append(tr.X, 0)
	tr.Y = append(tr.Y, 0)
	tr.Z = append(tr.Z, 0)
	tr.VX = append(tr.VX, 0)
	tr.VY = append(tr.VY, 0)
	tr.VZ = append(tr.VZ, 0)
	for m := 0; m < 3; m++ {
		tr.MotorV[m] = append(tr.MotorV[m], 0)
		tr.MotorP[m] = append(tr.MotorP[m], 0)
	}
	tr.E = append(tr.E, 0)
	tr.EVel = append(tr.EVel, 0)
	tr.Fan = append(tr.Fan, 0)
	tr.Hotend = append(tr.Hotend, 0)
	tr.Bed = append(tr.Bed, 0)
	tr.HotendOn = append(tr.HotendOn, 0)
	tr.BedOn = append(tr.BedOn, 0)
	tr.Layer = append(tr.Layer, -1)
	return tr.Len() - 1
}

// Interp linearly interpolates a trace field at an arbitrary time. Sensor
// models running faster than the master rate use this to upsample.
func Interp(field []float64, rate, t float64) float64 {
	if len(field) == 0 {
		return 0
	}
	pos := t * rate
	if pos <= 0 {
		return field[0]
	}
	i := int(pos)
	if i >= len(field)-1 {
		return field[len(field)-1]
	}
	frac := pos - float64(i)
	return field[i]*(1-frac) + field[i+1]*frac
}

// Validate performs internal consistency checks, mainly for tests.
func (tr *Trace) Validate() error {
	n := tr.Len()
	same := func(name string, l int) error {
		if l != n {
			return fmt.Errorf("printer: trace field %s has %d samples, want %d", name, l, n)
		}
		return nil
	}
	checks := []struct {
		name string
		l    int
	}{
		{"Y", len(tr.Y)}, {"Z", len(tr.Z)},
		{"VX", len(tr.VX)}, {"VY", len(tr.VY)}, {"VZ", len(tr.VZ)},
		{"M0", len(tr.MotorV[0])}, {"M1", len(tr.MotorV[1])}, {"M2", len(tr.MotorV[2])},
		{"MP0", len(tr.MotorP[0])}, {"MP1", len(tr.MotorP[1])}, {"MP2", len(tr.MotorP[2])},
		{"E", len(tr.E)}, {"EVel", len(tr.EVel)}, {"Fan", len(tr.Fan)},
		{"Hotend", len(tr.Hotend)}, {"Bed", len(tr.Bed)},
		{"HotendOn", len(tr.HotendOn)}, {"BedOn", len(tr.BedOn)},
		{"Layer", len(tr.Layer)},
	}
	for _, c := range checks {
		if err := same(c.name, c.l); err != nil {
			return err
		}
	}
	if n > 0 && tr.Rate <= 0 {
		return fmt.Errorf("printer: non-positive trace rate %v", tr.Rate)
	}
	for i := 1; i < len(tr.LayerStart); i++ {
		if tr.LayerStart[i] < tr.LayerStart[i-1] {
			return fmt.Errorf("printer: layer %d starts before layer %d", i, i-1)
		}
	}
	for _, v := range tr.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("printer: non-finite position in trace")
		}
	}
	return nil
}

// TrimBefore returns a copy of the trace with everything before time t
// removed, re-anchoring timestamps to the new origin. Layer starts and
// events that fall before t are dropped. The paper's IDS aligns observed
// and reference signals "at the beginning" of the printing process; because
// heat-up waits have random durations, recordings are anchored at the end
// of the preamble rather than at power-on.
func (tr *Trace) TrimBefore(t float64) *Trace {
	cut := int(t * tr.Rate)
	if cut <= 0 {
		return tr
	}
	if cut > tr.Len() {
		cut = tr.Len()
	}
	out := &Trace{Rate: tr.Rate}
	slice := func(v []float64) []float64 { return append([]float64(nil), v[cut:]...) }
	out.X, out.Y, out.Z = slice(tr.X), slice(tr.Y), slice(tr.Z)
	out.VX, out.VY, out.VZ = slice(tr.VX), slice(tr.VY), slice(tr.VZ)
	for m := 0; m < 3; m++ {
		out.MotorV[m] = slice(tr.MotorV[m])
		out.MotorP[m] = slice(tr.MotorP[m])
	}
	out.E, out.EVel = slice(tr.E), slice(tr.EVel)
	out.Fan = slice(tr.Fan)
	out.Hotend, out.Bed = slice(tr.Hotend), slice(tr.Bed)
	out.HotendOn, out.BedOn = slice(tr.HotendOn), slice(tr.BedOn)
	out.Layer = append([]int(nil), tr.Layer[cut:]...)
	for _, ls := range tr.LayerStart {
		if ls >= t {
			out.LayerStart = append(out.LayerStart, ls-t)
		}
	}
	for _, ev := range tr.Events {
		if ev.T >= t {
			out.Events = append(out.Events, Event{ev.T - t, ev.Kind})
		}
	}
	return out
}

// EventTime returns the time of the last event of the given kind, or -1.
func (tr *Trace) EventTime(kind string) float64 {
	t := -1.0
	for _, ev := range tr.Events {
		if ev.Kind == kind {
			t = ev.T
		}
	}
	return t
}
