// Package pca implements Principal Component Analysis via a cyclic Jacobi
// eigendecomposition of the covariance matrix, using only the standard
// library. Belikovetsky's IDS [5] uses PCA to compress a spectrogram down
// to three channels before comparison.
package pca

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nsync/internal/sigproc"
)

// Model is a fitted PCA projection.
type Model struct {
	// Mean is the per-dimension mean of the training data (length d).
	Mean []float64
	// Components holds the top-k eigenvectors as rows (k x d), ordered by
	// decreasing eigenvalue.
	Components [][]float64
	// Variances holds the corresponding eigenvalues.
	Variances []float64
}

// Fit computes the top-k principal components of data, where data[n] is one
// d-dimensional observation.
func Fit(data [][]float64, k int) (*Model, error) {
	n := len(data)
	if n == 0 {
		return nil, errors.New("pca: empty data")
	}
	d := len(data[0])
	if d == 0 {
		return nil, errors.New("pca: zero-dimensional data")
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("pca: k=%d outside [1, %d]", k, d)
	}
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("pca: row %d has %d dims, want %d", i, len(row), d)
		}
	}
	mean := make([]float64, d)
	for _, row := range data {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	// Covariance matrix (d x d).
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range data {
		for i := 0; i < d; i++ {
			di := row[i] - mean[i]
			for j := i; j < d; j++ {
				cov[i][j] += di * (row[j] - mean[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= float64(n)
			cov[j][i] = cov[i][j]
		}
	}
	vals, vecs := jacobiEigen(cov)
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })
	m := &Model{Mean: mean}
	for r := 0; r < k; r++ {
		idx := order[r]
		comp := make([]float64, d)
		for j := 0; j < d; j++ {
			comp[j] = vecs[j][idx] // eigenvectors are columns of vecs
		}
		m.Components = append(m.Components, comp)
		m.Variances = append(m.Variances, vals[idx])
	}
	return m, nil
}

// Transform projects one observation onto the principal components.
func (m *Model) Transform(row []float64) ([]float64, error) {
	if len(row) != len(m.Mean) {
		return nil, fmt.Errorf("pca: row has %d dims, want %d", len(row), len(m.Mean))
	}
	out := make([]float64, len(m.Components))
	for r, comp := range m.Components {
		var s float64
		for j, v := range row {
			s += (v - m.Mean[j]) * comp[j]
		}
		out[r] = s
	}
	return out, nil
}

// TransformSignal fits PCA on the channels of s (each time sample is one
// observation, channels are dimensions) and returns the signal projected to
// k channels — the compression step of Belikovetsky's IDS.
func TransformSignal(s *sigproc.Signal, k int) (*sigproc.Signal, error) {
	n, c := s.Len(), s.Channels()
	if n == 0 || c == 0 {
		return nil, errors.New("pca: empty signal")
	}
	rows := make([][]float64, n)
	backing := make([]float64, n*c)
	for i := 0; i < n; i++ {
		row := backing[i*c : (i+1)*c : (i+1)*c]
		for j := 0; j < c; j++ {
			row[j] = s.Data[j][i]
		}
		rows[i] = row
	}
	m, err := Fit(rows, k)
	if err != nil {
		return nil, err
	}
	out := sigproc.New(s.Rate, k, n)
	for i, row := range rows {
		proj, err := m.Transform(row)
		if err != nil {
			return nil, err
		}
		for r := 0; r < k; r++ {
			out.Data[r][i] = proj[r]
		}
	}
	return out, nil
}

// jacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi rotations.
// Returns eigenvalues and the matrix of eigenvectors (as columns).
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	d := len(a)
	// Work on a copy.
	m := make([][]float64, d)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := make([][]float64, d)
	for i := range v {
		v[i] = make([]float64, d)
		v[i][i] = 1
	}
	const (
		maxSweeps = 64
		eps       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < eps {
			break
		}
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				if math.Abs(m[p][q]) < eps/float64(d*d) {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}
	vals := make([]float64, d)
	for i := 0; i < d; i++ {
		vals[i] = m[i][i]
	}
	return vals, v
}

// rotate applies a Jacobi rotation in the (p, q) plane to m and
// accumulates it into v.
func rotate(m, v [][]float64, p, q int, c, s float64) {
	d := len(m)
	for i := 0; i < d; i++ {
		mip, miq := m[i][p], m[i][q]
		m[i][p] = c*mip - s*miq
		m[i][q] = s*mip + c*miq
	}
	for i := 0; i < d; i++ {
		mpi, mqi := m[p][i], m[q][i]
		m[p][i] = c*mpi - s*mqi
		m[q][i] = s*mpi + c*mqi
	}
	for i := 0; i < d; i++ {
		vip, viq := v[i][p], v[i][q]
		v[i][p] = c*vip - s*viq
		v[i][q] = s*vip + c*viq
	}
}
