// Package core implements the NSYNC framework of Section VII: a dynamic
// synchronizer produces the horizontal displacement array h_disp, a
// comparator produces the vertical distance array v_dist, and a
// discriminator with three sub-modules (CADHD, h_dist, v_dist) decides in
// real time whether the observed signal differs from the reference. The
// discriminator thresholds are learned by One-Class Classification from
// benign runs only (Section VII-C).
package core

import (
	"errors"
	"fmt"

	"nsync/internal/dtw"
	"nsync/internal/dwm"
	"nsync/internal/sigproc"
)

// Alignment is the output of a dynamic synchronizer: corresponding points or
// windows between an observed signal a and a reference b, exposed as the
// horizontal displacement array plus a comparator that derives the vertical
// distance array for any distance metric.
type Alignment interface {
	// HDisp returns the horizontal displacement per index, in samples.
	// For window-based synchronizers the index is the window index; for
	// point-based synchronizers it is the sample index.
	HDisp() []float64
	// VDist runs the comparator of Section VII-A: the distance between each
	// pair of corresponding points or windows.
	VDist(d sigproc.DistanceFunc) ([]float64, error)
	// IndexRate returns how many alignment indexes there are per second, so
	// detection times can be reported in seconds.
	IndexRate() float64
}

// Synchronizer finds the timing relationship between an observed signal and
// a reference signal (the DSYNC stage of Fig. 7).
type Synchronizer interface {
	Synchronize(observed, reference *sigproc.Signal) (Alignment, error)
	// Name identifies the synchronizer in reports ("dwm", "dtw", "none", ...).
	Name() string
}

// ---- DWM-based synchronization (window-based, the paper's proposal) ----

// DWMSynchronizer adapts dwm.Run to the Synchronizer interface.
type DWMSynchronizer struct {
	Params dwm.Params
	// Opts are passed through to the DWM synchronizer (estimator, bias).
	Opts []dwm.Option
}

var _ Synchronizer = (*DWMSynchronizer)(nil)

// Name implements Synchronizer.
func (s *DWMSynchronizer) Name() string { return "dwm" }

// Synchronize implements Synchronizer.
func (s *DWMSynchronizer) Synchronize(observed, reference *sigproc.Signal) (Alignment, error) {
	res, err := dwm.Run(observed, reference, s.Params, s.Opts...)
	if err != nil {
		return nil, err
	}
	return &dwmAlignment{a: observed, b: reference, res: res}, nil
}

type dwmAlignment struct {
	a, b *sigproc.Signal
	res  *dwm.Result
}

func (al *dwmAlignment) HDisp() []float64 {
	out := make([]float64, len(al.res.HDisp))
	for i, d := range al.res.HDisp {
		out[i] = float64(d)
	}
	return out
}

func (al *dwmAlignment) IndexRate() float64 {
	return al.res.Rate / float64(al.res.NHop)
}

// VDist computes Eq. (16): the distance between a{i} and b{i; h_disp[i]},
// clamping the reference window to the signal bounds at the edges.
func (al *dwmAlignment) VDist(d sigproc.DistanceFunc) ([]float64, error) {
	nWin, nHop := al.res.NWin, al.res.NHop
	bn := al.b.Len()
	out := make([]float64, len(al.res.HDisp))
	// One pair of reusable window views slides over both signals; the
	// distance functions only read their arguments.
	var aView, bView sigproc.Signal
	for i, h := range al.res.HDisp {
		aWin := al.a.SliceInto(&aView, i*nHop, i*nHop+nWin)
		lo := i*nHop + h
		if lo < 0 {
			lo = 0
		}
		if lo+nWin > bn {
			lo = bn - nWin
		}
		if lo < 0 {
			return nil, fmt.Errorf("core: reference shorter than one window (%d < %d)", bn, nWin)
		}
		bWin := al.b.SliceInto(&bView, lo, lo+nWin)
		v, err := sigproc.MultiChannelDistance(d, aWin, bWin)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ---- DTW-based synchronization (point-based, prior art) ----

// DTWSynchronizer adapts FastDTW to the Synchronizer interface.
type DTWSynchronizer struct {
	// Radius is the FastDTW radius; the paper always uses the smallest one.
	Radius int
	// PointDist is the per-point metric used during alignment; nil means
	// correlation distance across channels.
	PointDist sigproc.DistanceFunc
	// Exact forces full O(N*M) DTW instead of FastDTW.
	Exact bool
}

var _ Synchronizer = (*DTWSynchronizer)(nil)

// Name implements Synchronizer.
func (s *DTWSynchronizer) Name() string {
	if s.Exact {
		return "dtw-exact"
	}
	return "dtw"
}

// Synchronize implements Synchronizer.
func (s *DTWSynchronizer) Synchronize(observed, reference *sigproc.Signal) (Alignment, error) {
	pd := s.PointDist
	if pd == nil {
		pd = sigproc.CorrelationDistance
	}
	var (
		res *dtw.Result
		err error
	)
	if s.Exact {
		res, err = dtw.Distance(observed, reference, pd)
	} else {
		res, err = dtw.Fast(observed, reference, pd, s.Radius)
	}
	if err != nil {
		return nil, err
	}
	return &dtwAlignment{a: observed, b: reference, res: res, pd: pd}, nil
}

type dtwAlignment struct {
	a, b *sigproc.Signal
	res  *dtw.Result
	pd   sigproc.DistanceFunc
}

func (al *dtwAlignment) HDisp() []float64 {
	return dtw.HDisp(al.res.Path, al.a.Len())
}

func (al *dtwAlignment) IndexRate() float64 { return al.a.Rate }

func (al *dtwAlignment) VDist(d sigproc.DistanceFunc) ([]float64, error) {
	if al.a.Channels() < 2 && (isCorrelationLike(d)) {
		return nil, errors.New("core: correlation-like point distance needs >= 2 channels")
	}
	return dtw.VDist(al.res.Path, al.a, al.b, d), nil
}

func isCorrelationLike(d sigproc.DistanceFunc) (degenerate bool) {
	// Correlation of a length-1 vector is undefined; detect the stock
	// metrics that degenerate. Custom metrics are trusted — but a custom
	// metric may legitimately index past element 0 and panic on the
	// length-1 probe vectors, so a panicking metric is treated as "not
	// correlation-like" rather than crashing the caller.
	defer func() {
		if recover() != nil {
			degenerate = false
		}
	}()
	probe := d([]float64{1}, []float64{1})
	probe2 := d([]float64{1}, []float64{2})
	return probe == 1 && probe2 == 1
}

// ---- No synchronization (prior art without DSYNC) ----

// NullSynchronizer compares a and b index by index without any dynamic
// synchronization, as Moore's IDS does [18]. Window describes how indexes
// are formed: Window <= 1 compares point by point; otherwise signals are cut
// into windows of Window samples with hop Hop.
type NullSynchronizer struct {
	// Window and Hop are in samples; Window <= 1 means point-by-point.
	Window, Hop int
}

var _ Synchronizer = (*NullSynchronizer)(nil)

// Name implements Synchronizer.
func (s *NullSynchronizer) Name() string { return "none" }

// Synchronize implements Synchronizer.
func (s *NullSynchronizer) Synchronize(observed, reference *sigproc.Signal) (Alignment, error) {
	if observed.Channels() != reference.Channels() {
		return nil, fmt.Errorf("core: channel mismatch %d vs %d", observed.Channels(), reference.Channels())
	}
	w, h := s.Window, s.Hop
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = w
	}
	n := min(observed.Len(), reference.Len())
	count := 0
	if n >= w {
		count = (n-w)/h + 1
	}
	return &nullAlignment{a: observed, b: reference, win: w, hop: h, count: count}, nil
}

type nullAlignment struct {
	a, b     *sigproc.Signal
	win, hop int
	count    int
}

// HDisp is identically zero: without DSYNC the IDS assumes perfect
// alignment, which is exactly the assumption time noise breaks.
func (al *nullAlignment) HDisp() []float64 { return make([]float64, al.count) }

func (al *nullAlignment) IndexRate() float64 { return al.a.Rate / float64(al.hop) }

func (al *nullAlignment) VDist(d sigproc.DistanceFunc) ([]float64, error) {
	out := make([]float64, al.count)
	var aView, bView sigproc.Signal
	for i := range out {
		lo := i * al.hop
		aw := al.a.SliceInto(&aView, lo, lo+al.win)
		bw := al.b.SliceInto(&bView, lo, lo+al.win)
		v, err := sigproc.MultiChannelDistance(d, aw, bw)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
